"""Reversible logic under superposition: the Table IV story in one script.

Run with::

    python examples/revlib_superposition.py

A reversible ripple-carry adder is simulated twice:

1. classically — both input registers in basis states; the exact engine and
   the float-weighted QMDD engine both finish instantly and the sum register
   can be read off deterministically;
2. under superposition — the paper's "modification": every unspecified input
   gets an H prologue, so the adder processes *all* inputs at once.  The
   script checks that the joint distribution of (a, b, a+b) is uniform over
   all valid additions — i.e. the adder is correct on every branch of the
   superposition — and compares the decision-diagram sizes of both engines.

It also demonstrates the RevLib ``.real`` round-trip, since the Table IV
circuits are distributed in that format.
"""

from __future__ import annotations

from repro import BitSliceSimulator, QmddSimulator
from repro.circuit.real_format import circuit_from_real, circuit_to_real
from repro.workloads.revlib import h_augment, ripple_carry_adder

NUM_BITS = 4


def wire_layout(num_bits: int):
    """Qubit indices of the adder's registers (see ripple_carry_adder)."""
    a = [1 + i for i in range(num_bits)]
    b = [1 + num_bits + i for i in range(num_bits)]
    carry_out = 2 * num_bits + 1
    return a, b, carry_out


def classical_run() -> None:
    circuit, constants = ripple_carry_adder(NUM_BITS)
    a_wires, b_wires, carry_out = wire_layout(NUM_BITS)

    # Encode a = 5, b = 9 by X gates on the corresponding wires (LSB first).
    a_value, b_value = 5, 9
    prepared = circuit.copy(name="add_classical")
    prologue = []
    for bit in range(NUM_BITS):
        if (a_value >> bit) & 1:
            prologue.append(a_wires[bit])
        if (b_value >> bit) & 1:
            prologue.append(b_wires[bit])
    from repro import QuantumCircuit

    staged = QuantumCircuit(circuit.num_qubits, name="add_classical")
    for wire in prologue:
        staged.x(wire)
    for gate in circuit.gates:
        staged.append(gate)

    simulator = BitSliceSimulator.simulate(staged)
    # Read the sum register (b := a + b) deterministically.
    total = 0
    for bit in range(NUM_BITS):
        if simulator.probability_of_qubit(b_wires[bit], 1) > 0.5:
            total |= 1 << bit
    carry = simulator.probability_of_qubit(carry_out, 1) > 0.5
    total |= int(carry) << NUM_BITS
    print(f"classical adder: {a_value} + {b_value} = {total}")
    assert total == a_value + b_value


def superposed_run() -> None:
    circuit, constants = ripple_carry_adder(NUM_BITS)
    modified = h_augment(circuit, constants)
    a_wires, b_wires, carry_out = wire_layout(NUM_BITS)

    exact = BitSliceSimulator.simulate(modified)
    qmdd = QmddSimulator.simulate(modified)
    print(f"superposed adder ({modified.num_qubits} qubits, "
          f"{modified.num_gates} gates):")
    print(f"  bit-sliced BDD nodes: {exact.state.num_nodes()}")
    print(f"  QMDD nodes:           {qmdd.num_nodes()}")

    # Check a few branches of the superposition: Pr[a, b, sum] must be
    # (1/2^(2*NUM_BITS)) exactly when sum == a + b, and 0 otherwise.
    uniform = 1.0 / (1 << (2 * NUM_BITS))
    checks = [(3, 4), (7, 7), (0, 15), (12, 9)]
    for a_value, b_value in checks:
        total = a_value + b_value
        qubits, outcome = [], []
        for bit in range(NUM_BITS):
            qubits.append(a_wires[bit])
            outcome.append((a_value >> bit) & 1)
            qubits.append(b_wires[bit])
            outcome.append((total >> bit) & 1)
        qubits.append(carry_out)
        outcome.append((total >> NUM_BITS) & 1)
        probability = exact.probability_of_outcome(qubits, outcome)
        print(f"  Pr[a={a_value}, a+b={total}] = {probability:.6f} "
              f"(expected {uniform:.6f})")
        assert abs(probability - uniform) < 1e-12


def real_roundtrip() -> None:
    circuit, constants = ripple_carry_adder(NUM_BITS)
    text = circuit_to_real(circuit, constants)
    parsed, parsed_constants = circuit_from_real(text, name="adder_roundtrip")
    assert parsed.num_gates == circuit.num_gates
    assert parsed_constants == constants
    print(f"\n.real round-trip OK ({parsed.num_gates} gates); header preview:")
    print("\n".join(text.splitlines()[:6]))


def main() -> None:
    classical_run()
    print()
    superposed_run()
    real_roundtrip()


if __name__ == "__main__":
    main()

"""Exactness demonstration: algebraic amplitudes versus floating-point DDs.

Run with::

    python examples/exact_vs_float.py

The script applies increasingly deep H/T/CX layers and tracks how far each
engine's total probability mass drifts from 1.  The bit-sliced engine is
exact by construction (integers all the way; the only float appears when a
probability is finally printed), while the float-weighted QMDD engine's drift
grows with depth and with the complex-table tolerance — the mechanism behind
the "error" entries in the paper's Tables III and V.

It also shows a sharper exactness property: after applying T eight times the
state must be *bit-for-bit identical* to the initial state, which the
algebraic representation certifies with integer equality rather than an
epsilon comparison.
"""

from __future__ import annotations

from repro import BitSliceSimulator, QmddSimulator, QuantumCircuit
from repro.harness.experiments import accuracy_circuit


def drift_table() -> None:
    print(f"{'layers':>8} {'exact drift':>14} {'QMDD tol=1e-6':>16} "
          f"{'QMDD tol=1e-10':>16} {'QMDD tol=1e-13':>16}")
    for layers in (4, 16, 64):
        circuit = accuracy_circuit(num_qubits=6, layers=layers)
        exact = BitSliceSimulator.simulate(circuit)
        exact_drift = abs(exact.total_probability() - 1.0)
        row = [f"{layers:>8}", f"{exact_drift:>14.3e}"]
        for tolerance in (1e-6, 1e-10, 1e-13):
            simulator = QmddSimulator(circuit.num_qubits, tolerance=tolerance,
                                      error_threshold=float("inf"))
            simulator.run(circuit)
            drift = abs(simulator.norm_squared() - 1.0)
            row.append(f"{drift:>16.3e}")
        print(" ".join(row))


def t_gate_period() -> None:
    """T**8 == identity, certified by integer equality of the state."""
    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    reference = BitSliceSimulator.simulate(circuit).to_algebraic_vector()

    extended = QuantumCircuit(2).h(0).cx(0, 1)
    for _ in range(8):
        extended.t(1)
    after_eight_t = BitSliceSimulator.simulate(extended).to_algebraic_vector()

    identical = reference == after_eight_t
    print(f"\nT^8 returns the exact same algebraic state: {identical}")
    assert identical


def main() -> None:
    drift_table()
    t_gate_period()


if __name__ == "__main__":
    main()

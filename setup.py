"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``python setup.py develop`` keeps working on minimal
environments that lack the ``wheel`` package required by PEP 660 editable
installs (such as fully offline machines).
"""

from setuptools import setup

setup()

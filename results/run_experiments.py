"""Collect measured data for EXPERIMENTS.md (laptop-scale parameters)."""
import sys, json, time
from repro.harness.experiments import (table3_experiment, table4_experiment,
                                        table5_experiment, table6_experiment,
                                        accuracy_experiment)
from repro.harness.runner import ResourceLimits
from repro.harness.tables import (format_table3, format_table4, format_table5,
                                  format_table6, format_accuracy)
from repro.harness.report import experiment_to_markdown, save_experiment

which = sys.argv[1]
limits = ResourceLimits(max_seconds=20.0, max_nodes=250_000)
start = time.time()
if which == "table3":
    exp = table3_experiment(qubit_counts=(10, 20, 30, 40), circuits_per_size=2, limits=limits)
    text, md = format_table3(exp), experiment_to_markdown(exp)
elif which == "table4":
    exp = table4_experiment(families=("add8", "add16", "alu4", "cpu_ctrl3",
                                      "register4x4", "nested_if6", "parity12",
                                      "bdd_chain10"), limits=limits)
    text, md = format_table4(exp), experiment_to_markdown(exp)
elif which == "table5":
    exp = table5_experiment(qubit_counts=(20, 40, 80, 160, 320), limits=limits)
    text, md = format_table5(exp), experiment_to_markdown(exp, engines=("qmdd", "bitslice", "stabilizer"))
elif which == "table6":
    exp = table6_experiment(qubit_counts=(16, 20), circuits_per_size=2, depth=5, limits=limits)
    text, md = format_table6(exp), experiment_to_markdown(exp)
elif which == "accuracy":
    exp = accuracy_experiment(num_qubits=6, layers=(4, 16, 64), tolerances=(1e-6, 1e-10, 1e-13))
    text, md = format_accuracy(exp), ""
save_experiment(exp, f"/root/repo/results/{which}.json")
with open(f"/root/repo/results/{which}.txt", "w") as fh:
    fh.write(text)
with open(f"/root/repo/results/{which}.md", "w") as fh:
    fh.write(md)
print(f"{which} done in {time.time()-start:.1f}s")

#!/usr/bin/env python3
"""Build the documentation site, with zero hard dependencies.

The pipeline has four stages, each of which can fail the build:

1. **API reference generation** — introspects the public API
   (``repro.run`` / ``run_sweep``, the ``Engine`` protocol,
   ``Capabilities``, ``RunResult``, the fused BDD kernels, the sampling
   machinery, ...) and renders ``docs/api.md`` style content from the live
   docstrings.
2. **Docstring coverage gate** — every public symbol on the documented
   surface must carry a docstring; a missing one is a build warning, and
   warnings fail the build (``--strict`` is the default in CI).
3. **Rendering** — uses MkDocs when it is importable (``mkdocs build
   --strict`` honours ``mkdocs.yml``); otherwise falls back to the
   built-in minimal Markdown renderer so the site builds on machines with
   nothing but the standard library.
4. **Link check** — every internal link in every rendered page must
   resolve to an existing page.

Usage::

    python scripts/build_docs.py                  # build into site/
    python scripts/build_docs.py --site-dir out   # custom output dir
    python scripts/build_docs.py --no-mkdocs      # force the fallback
    python scripts/build_docs.py --check-only     # gates only, no output
"""

from __future__ import annotations

import argparse
import html
import inspect
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Pages of the site, in navigation order: (title, docs/ file name).
NAV: List[Tuple[str, str]] = [
    ("Home", "index.md"),
    ("Architecture", "architecture.md"),
    ("Paper mapping", "paper-mapping.md"),
    ("Dynamic reordering", "reordering.md"),
    ("Substrate backends", "substrate.md"),
    ("Sampling & dynamic circuits", "sampling.md"),
    ("Result & prefix caching", "caching.md"),
    ("Simulation service", "service.md"),
    ("Resilience & fault injection", "resilience.md"),
    ("Checkpointing & snapshots", "checkpointing.md"),
    ("Writing an engine", "engine-authors.md"),
    ("Performance counters", "perf-counters.md"),
    ("API reference", "api.md"),
]

#: Modules whose public surface the API reference documents (and whose
#: docstring coverage the build enforces).
API_MODULES = [
    "repro",
    "repro.engines.base",
    "repro.engines.registry",
    "repro.engines.limits",
    "repro.engines.frontdoor",
    "repro.engines.result",
    "repro.engines.sampling",
    "repro.engines.dynamic",
    "repro.bdd.substrate",
    "repro.cache.fingerprint",
    "repro.cache.result_cache",
    "repro.cache.sessions",
    "repro.core.simulator",
    "repro.core.bitslice",
    "repro.core.measurement",
    "repro.core.sampling",
    "repro.circuit.circuit",
    "repro.circuit.gates",
    "repro.circuit.qasm",
    "repro.circuit.transforms",
    "repro.service.protocol",
    "repro.service.scheduler",
    "repro.service.sessions",
    "repro.service.server",
    "repro.service.client",
    "repro.service.watch",
    "repro.resilience.faults",
    "repro.resilience.retry",
    "repro.resilience.journal",
    "repro.snapshot",
]

#: Extra individual symbols that must be documented even though their home
#: module is too large to document wholesale (the fused BDD kernels).
API_EXTRA_SYMBOLS = [
    ("repro.bdd.manager", "BddManager", ["apply_maj3", "apply_xor3",
                                         "apply_swap_vars", "batcher",
                                         "batch_binary", "batch_ite",
                                         "batch_maj3", "batch_xor3",
                                         "batch_restrict", "satcount",
                                         "swap_adjacent_levels", "sift",
                                         "maybe_reorder", "set_order"]),
    ("repro.bdd.manager", "BatchApplier", None),
]


# --------------------------------------------------------------------- #
# API reference generation + docstring coverage
# --------------------------------------------------------------------- #
def _public_members(obj) -> List[str]:
    names = getattr(obj, "__all__", None)
    if names is not None:
        return list(names)
    return [name for name in vars(obj) if not name.startswith("_")]


def _signature(value) -> str:
    try:
        return str(inspect.signature(value))
    except (TypeError, ValueError):
        return "(...)"


def _first_paragraph(doc: Optional[str]) -> str:
    if not doc:
        return ""
    return inspect.cleandoc(doc).split("\n\n")[0]


class ApiCollector:
    """Walks the documented surface, emitting markdown and warnings."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.warnings: List[str] = []
        self._seen_classes: set = set()

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def _require_doc(self, qualified: str, value) -> str:
        doc = inspect.getdoc(value)
        if not doc or not doc.strip():
            self.warn(f"undocumented public symbol: {qualified}")
            return "*Undocumented.*"
        return doc

    def emit_class(self, module_name: str, name: str, value,
                   only_methods: Optional[List[str]] = None) -> None:
        qualified = f"{module_name}.{name}"
        if qualified in self._seen_classes:
            return
        self._seen_classes.add(qualified)
        self.lines.append(f"### class `{name}`\n")
        self.lines.append(self._require_doc(qualified, value) + "\n")
        members = []
        for attr_name, attr in inspect.getmembers(value):
            if attr_name.startswith("_"):
                continue
            if only_methods is not None and attr_name not in only_methods:
                continue
            if callable(attr) or isinstance(attr, property):
                members.append((attr_name, attr))
        for attr_name, attr in members:
            if isinstance(attr, property):
                descriptor = f"`{attr_name}` *(property)*"
                target = attr.fget
            else:
                descriptor = f"`{attr_name}{_signature(attr)}`"
                target = attr
            doc = self._require_doc(f"{qualified}.{attr_name}", target)
            self.lines.append(f"* {descriptor} — "
                              f"{_first_paragraph(doc)}")
        self.lines.append("")

    def emit_function(self, module_name: str, name: str, value) -> None:
        qualified = f"{module_name}.{name}"
        self.lines.append(f"### `{name}{_signature(value)}`\n")
        self.lines.append(self._require_doc(qualified, value) + "\n")

    def emit_module(self, module_name: str) -> None:
        import importlib

        module = importlib.import_module(module_name)
        self.lines.append(f"## `{module_name}`\n")
        self.lines.append(_first_paragraph(
            self._require_doc(module_name, module)) + "\n")
        for name in sorted(_public_members(module)):
            value = getattr(module, name, None)
            if value is None and name != "None":
                self.warn(f"{module_name}.__all__ names missing symbol {name}")
                continue
            defined_in = getattr(value, "__module__", module_name)
            if inspect.isclass(value):
                if defined_in == module_name:
                    self.emit_class(module_name, name, value)
            elif inspect.isfunction(value):
                if defined_in == module_name:
                    self.emit_function(module_name, name, value)
            # Re-exports, constants and instances are listed but not
            # documented per-symbol (their home module documents them).

    def build(self) -> str:
        self.lines.append("# API reference\n")
        self.lines.append(
            "Generated from the live docstrings by `scripts/build_docs.py`; "
            "the build fails when any public symbol is undocumented.\n")
        for module_name in API_MODULES:
            self.emit_module(module_name)
        self.lines.append("## Fused BDD kernels (`repro.bdd.manager`)\n")
        self.lines.append(
            "The substrate's multi-operand kernels and batching surface "
            "(see the [architecture notes](architecture.md)):\n")
        import importlib

        for module_name, class_name, methods in API_EXTRA_SYMBOLS:
            module = importlib.import_module(module_name)
            self.emit_class(module_name, class_name,
                            getattr(module, class_name), methods)
        return "\n".join(self.lines) + "\n"


# --------------------------------------------------------------------- #
# Minimal markdown renderer (fallback when MkDocs is unavailable)
# --------------------------------------------------------------------- #
_INLINE_CODE = re.compile(r"`([^`]+)`")
_BOLD = re.compile(r"\*\*([^*]+)\*\*")
_ITALIC = re.compile(r"(?<!\*)\*([^*\s][^*]*)\*(?!\*)")
_LINK = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")


def _render_inline(text: str) -> str:
    parts = []
    cursor = 0
    for match in _INLINE_CODE.finditer(text):
        parts.append(("text", text[cursor:match.start()]))
        parts.append(("code", match.group(1)))
        cursor = match.end()
    parts.append(("text", text[cursor:]))
    rendered = []
    for kind, chunk in parts:
        if kind == "code":
            rendered.append(f"<code>{html.escape(chunk)}</code>")
            continue
        chunk = html.escape(chunk, quote=False)
        chunk = _LINK.sub(
            lambda m: f'<a href="{_href(m.group(2))}">{m.group(1)}</a>', chunk)
        chunk = _BOLD.sub(r"<strong>\1</strong>", chunk)
        chunk = _ITALIC.sub(r"<em>\1</em>", chunk)
        rendered.append(chunk)
    return "".join(rendered)


def _href(target: str) -> str:
    if target.startswith(("http://", "https://", "#")):
        return target
    return re.sub(r"\.md(?=(#|$))", ".html", target)


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")


def render_markdown(text: str) -> str:
    """Render the markdown subset the docs use into HTML."""
    out: List[str] = []
    lines = text.splitlines()
    index = 0
    paragraph: List[str] = []
    list_items: Optional[List[str]] = None

    def flush_paragraph() -> None:
        if paragraph:
            out.append(f"<p>{_render_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    def flush_list() -> None:
        nonlocal list_items
        if list_items is not None:
            items = "".join(f"<li>{item}</li>" for item in list_items)
            out.append(f"<ul>{items}</ul>")
            list_items = None

    while index < len(lines):
        line = lines[index]
        stripped = line.strip()
        if stripped.startswith("```"):
            flush_paragraph()
            flush_list()
            code: List[str] = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                code.append(lines[index])
                index += 1
            out.append("<pre><code>"
                       + html.escape("\n".join(code)) + "</code></pre>")
            index += 1
            continue
        heading = re.match(r"^(#{1,6})\s+(.*)$", stripped)
        if heading:
            flush_paragraph()
            flush_list()
            level = len(heading.group(1))
            title = heading.group(2)
            out.append(f'<h{level} id="{_slug(title)}">'
                       f"{_render_inline(title)}</h{level}>")
            index += 1
            continue
        if stripped.startswith("|") and stripped.endswith("|"):
            flush_paragraph()
            flush_list()
            rows: List[List[str]] = []
            while index < len(lines) and lines[index].strip().startswith("|"):
                cells = [cell.strip() for cell
                         in lines[index].strip().strip("|").split("|")]
                if not all(re.fullmatch(r":?-{2,}:?", cell) for cell in cells):
                    rows.append(cells)
                index += 1
            if rows:
                header, *body = rows
                thead = "".join(f"<th>{_render_inline(cell)}</th>"
                                for cell in header)
                tbody = "".join(
                    "<tr>" + "".join(f"<td>{_render_inline(cell)}</td>"
                                     for cell in row) + "</tr>"
                    for row in body)
                out.append(f"<table><thead><tr>{thead}</tr></thead>"
                           f"<tbody>{tbody}</tbody></table>")
            continue
        bullet = re.match(r"^[*-]\s+(.*)$", stripped)
        if bullet:
            flush_paragraph()
            if list_items is None:
                list_items = []
            item = [bullet.group(1)]
            index += 1
            # hanging indent continuation lines belong to the item
            while index < len(lines) and lines[index].startswith("  ") \
                    and lines[index].strip() \
                    and not re.match(r"^[*-]\s+", lines[index].strip()):
                item.append(lines[index].strip())
                index += 1
            list_items.append(_render_inline(" ".join(item)))
            continue
        if not stripped:
            flush_paragraph()
            flush_list()
            index += 1
            continue
        paragraph.append(stripped)
        index += 1
    flush_paragraph()
    flush_list()
    return "\n".join(out)


_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title} — repro docs</title>
<style>
body {{ font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 0; color: #1f2430; }}
nav {{ position: fixed; top: 0; bottom: 0; left: 0; width: 15rem;
      background: #f4f5f7; padding: 1.5rem 1rem; overflow-y: auto;
      border-right: 1px solid #d8dbe0; box-sizing: border-box; }}
nav a {{ display: block; padding: .3rem .5rem; color: #1f2430;
        text-decoration: none; border-radius: 4px; }}
nav a.current, nav a:hover {{ background: #e2e6ee; }}
main {{ margin-left: 16.5rem; max-width: 50rem; padding: 2rem; }}
pre {{ background: #f4f5f7; padding: .8rem 1rem; overflow-x: auto;
      border-radius: 6px; }}
code {{ background: #f4f5f7; padding: .1rem .25rem; border-radius: 3px;
       font-size: .92em; }}
pre code {{ padding: 0; background: none; }}
table {{ border-collapse: collapse; margin: 1rem 0; }}
th, td {{ border: 1px solid #d8dbe0; padding: .4rem .7rem;
         text-align: left; vertical-align: top; }}
th {{ background: #f4f5f7; }}
h1, h2, h3 {{ line-height: 1.25; }}
a {{ color: #2258c4; }}
</style>
</head>
<body>
<nav>
<p><strong>repro docs</strong></p>
{nav}
</nav>
<main>
{body}
</main>
</body>
</html>
"""


def build_fallback_site(pages: Dict[str, str], site_dir: Path) -> None:
    """Render every page with the built-in renderer into ``site_dir``."""
    site_dir.mkdir(parents=True, exist_ok=True)
    for filename, markdown in pages.items():
        target = filename[:-3] + ".html"
        nav_html = "\n".join(
            f'<a href="{entry[1][:-3]}.html"'
            + (' class="current"' if entry[1] == filename else "")
            + f">{html.escape(entry[0])}</a>"
            for entry in NAV)
        title = next((entry[0] for entry in NAV if entry[1] == filename),
                     filename)
        (site_dir / target).write_text(
            _PAGE_TEMPLATE.format(title=html.escape(title), nav=nav_html,
                                  body=render_markdown(markdown)),
            encoding="utf-8")


# --------------------------------------------------------------------- #
# Link check
# --------------------------------------------------------------------- #
def check_links(pages: Dict[str, str]) -> List[str]:
    """Every internal markdown link must resolve to a known page."""
    problems = []
    known = set(pages)
    for filename, markdown in pages.items():
        # strip fenced code blocks so example links are not validated
        stripped = re.sub(r"```.*?```", "", markdown, flags=re.S)
        for match in _LINK.finditer(stripped):
            target = match.group(2)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            base = target.split("#", 1)[0]
            if base and base not in known:
                problems.append(f"{filename}: broken internal link -> {target}")
    return problems


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #
def load_pages() -> Dict[str, str]:
    """All site pages: the committed docs plus the generated API page."""
    pages: Dict[str, str] = {}
    for _, filename in NAV:
        if filename == "api.md":
            continue
        path = DOCS_DIR / filename
        if not path.exists():
            raise SystemExit(f"docs page missing: {path}")
        pages[filename] = path.read_text(encoding="utf-8")
    return pages


def try_mkdocs(site_dir: Path) -> bool:
    """Build with MkDocs when available; returns True on success."""
    try:
        import mkdocs  # noqa: F401
    except ImportError:
        return False
    import subprocess

    api_path = DOCS_DIR / "api.md"
    collector = ApiCollector()
    api_path.write_text(collector.build(), encoding="utf-8")
    try:
        subprocess.run(
            [sys.executable, "-m", "mkdocs", "build", "--strict",
             "--site-dir", str(site_dir)],
            check=True, cwd=REPO_ROOT)
    finally:
        api_path.unlink(missing_ok=True)
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--site-dir", default="site",
                        help="output directory (default: site/)")
    parser.add_argument("--no-mkdocs", action="store_true",
                        help="force the built-in renderer even if MkDocs "
                             "is installed (used by CI for reproducibility)")
    parser.add_argument("--check-only", action="store_true",
                        help="run the docstring-coverage and link gates "
                             "without writing the site")
    parser.add_argument("--allow-warnings", action="store_true",
                        help="report warnings without failing (the strict "
                             "gate is the default)")
    args = parser.parse_args(argv)

    collector = ApiCollector()
    api_markdown = collector.build()
    pages = load_pages()
    pages["api.md"] = api_markdown

    problems = check_links(pages)
    warnings = collector.warnings + problems
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)

    if warnings and not args.allow_warnings:
        print(f"docs build failed: {len(warnings)} warning(s) "
              f"(docstring coverage / links)", file=sys.stderr)
        return 1

    if args.check_only:
        print(f"docs gates ok: {len(pages)} pages, "
              f"{len(collector.warnings)} docstring warnings, "
              f"{len(problems)} link problems")
        return 0

    site_dir = Path(args.site_dir)
    if not site_dir.is_absolute():
        site_dir = REPO_ROOT / site_dir
    if not args.no_mkdocs and try_mkdocs(site_dir):
        print(f"docs built with MkDocs into {site_dir}")
        return 0
    build_fallback_site(pages, site_dir)
    print(f"docs built with the built-in renderer into {site_dir} "
          f"({len(pages)} pages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

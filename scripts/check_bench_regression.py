#!/usr/bin/env python
"""Gate CI on benchmark regressions against a committed baseline.

Compares a ``pytest-benchmark`` JSON report (``--benchmark-json``) with
``benchmarks/baseline.json`` and exits non-zero when any tracked metric
regresses:

* **timing** — a benchmark's best (min) time may not exceed the
  baseline's by more than ``--threshold`` (default 1.25, i.e. >25 %
  slowdown fails).  For the multi-round micro benchmarks min measures the
  memoised hot path; for the single-shot macro benchmarks (Table III
  sweeps) min *is* the full cache-cold execution, so the end-to-end cold
  path is gated there.  The micro benchmarks' algorithmic cold path is
  pinned exactly by the deterministic counters below instead of a timing
  (max-round timings proved too jittery to gate: one stray GC pause in
  a microsecond-scale round exceeds any reasonable band);
* **calibration** — both the baseline and the checking machine time the
  same self-contained synthetic workload (dict/int churn shaped like BDD
  node operations, deliberately *not* using the code under test so a
  substrate regression cannot rescale its own gate), and the ratio
  rescales the baseline, so a slower CI runner does not produce false
  regressions;
* **determinism** — integer ``extra_info`` metrics (node counts, cache
  miss counts, unique-table probes) must match the baseline exactly; the
  benchmarks are fixed-seed and these counters only accrue on first-time
  subproblems, so they are independent of how many timing rounds ran and
  any drift means the substrate's semantics or memoisation changed.

``*hit_rate`` extras are informational only: the cumulative rate depends on
pytest-benchmark's machine-speed-adaptive round count, so gating it would
be nondeterministic across runners.

Refresh the baseline intentionally with the same smoke set CI runs::

    python -m pytest benchmarks/bench_bdd_substrate.py \
        benchmarks/bench_table3_random.py --benchmark-only \
        --benchmark-json=bench-run.json -q
    python scripts/check_bench_regression.py --run bench-run.json --update

and commit the regenerated ``benchmarks/baseline.json`` together with the
change that legitimately moved the numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"


def calibration_seconds(repeats: int = 3) -> float:
    """Best-of-N timing of a fixed, self-contained synthetic workload.

    The loop mirrors what BDD node operations stress — dict probes and
    inserts keyed by packed integers, tuple interning, list appends — but
    deliberately uses none of the repository's code: a regression in the
    code under test must not be able to rescale its own gate.
    """

    def once() -> float:
        rng = random.Random(2021)
        table = {}
        unique = {}
        store = []
        start = time.perf_counter()
        for step in range(120_000):
            a = rng.randrange(1 << 20)
            b = rng.randrange(1 << 20)
            key = (a << 30) | b
            node = table.get(key)
            if node is None:
                ukey = (step & 1023, a, b)
                node = unique.get(ukey)
                if node is None:
                    node = len(store)
                    store.append(key)
                    unique[ukey] = node
                table[key] = node
        return time.perf_counter() - start

    return min(once() for _ in range(repeats))


def load_run(path: Path) -> Dict[str, Dict]:
    """Parse a pytest-benchmark JSON report into name -> metrics."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    entries: Dict[str, Dict] = {}
    for bench in report.get("benchmarks", []):
        name = bench["name"]
        entries[name] = {
            "min_seconds": bench["stats"]["min"],
            "extra": bench.get("extra_info", {}),
        }
    return entries


def build_baseline(run: Dict[str, Dict]) -> Dict:
    return {
        "_meta": {
            "description": "Smoke-benchmark baseline for scripts/check_bench_regression.py",
            "calibration_seconds": calibration_seconds(),
        },
        "benchmarks": run,
    }


def check(run: Dict[str, Dict], baseline: Dict,
          threshold: float) -> Tuple[List[str], List[str], List[Dict]]:
    """Returns (failures, notes, rows) — rows feed the markdown summary."""
    failures: List[str] = []
    notes: List[str] = []
    rows: List[Dict] = []
    base_cal = baseline.get("_meta", {}).get("calibration_seconds")
    scale = 1.0
    if base_cal:
        local_cal = calibration_seconds()
        scale = local_cal / base_cal
        notes.append(f"calibration: baseline {base_cal * 1e3:.4g} ms, "
                     f"here {local_cal * 1e3:.4g} ms -> machine scale {scale:.2f}x")
    base_benchmarks = baseline.get("benchmarks", {})
    for name, base_entry in sorted(base_benchmarks.items()):
        entry = run.get(name)
        if entry is None:
            failures.append(f"{name}: benchmark missing from the run report")
            rows.append({"name": name, "baseline_seconds": base_entry["min_seconds"],
                         "run_seconds": None, "status": "missing"})
            continue
        allowed = base_entry["min_seconds"] * scale * threshold
        actual = entry["min_seconds"]
        status = "ok"
        if actual > allowed:
            status = "REGRESSION"
            failures.append(
                f"{name}: min time {actual * 1e3:.4g} ms exceeds allowed "
                f"{allowed * 1e3:.4g} ms (baseline {base_entry['min_seconds'] * 1e3:.4g} ms "
                f"x scale {scale:.2f} x threshold {threshold:.2f})")
        else:
            notes.append(f"{name}: min time {actual * 1e3:.4g} ms "
                         f"(allowed {allowed * 1e3:.4g} ms) ok")
        base_extra = base_entry.get("extra", {})
        extra = entry.get("extra", {})
        for key, base_value in sorted(base_extra.items()):
            if key.endswith("hit_rate"):
                continue  # informational: depends on the adaptive round count
            value = extra.get(key)
            if value is None:
                failures.append(f"{name}: extra metric {key!r} missing from the run")
                status = f"{status} + metric missing" if status != "ok" else "metric missing"
                continue
            if isinstance(base_value, int) and not isinstance(base_value, bool):
                if value != base_value:
                    failures.append(
                        f"{name}: deterministic metric {key} changed "
                        f"{base_value} -> {value} (fixed-seed benchmarks must not drift; "
                        f"re-baseline if the change is intentional)")
                    if "metric drift" not in status:
                        status = (f"{status} + metric drift" if status != "ok"
                                  else "metric drift")
        rows.append({"name": name, "baseline_seconds": base_entry["min_seconds"],
                     "run_seconds": actual, "scale": scale, "status": status,
                     "extra": extra, "baseline_extra": base_extra})
    for name in sorted(set(run) - set(base_benchmarks)):
        # Run-only benchmarks are *new*, not failures: a freshly added
        # family shows up here on the PR that introduces it, before its
        # baseline entry lands via --update.  The summary labels it "new"
        # so reviewers see an ungated benchmark at a glance.
        notes.append(f"{name}: new benchmark, not yet in the baseline "
                     f"(record it with --update)")
        rows.append({"name": name, "baseline_seconds": None,
                     "run_seconds": run[name]["min_seconds"], "status": "new",
                     "extra": run[name].get("extra", {}), "baseline_extra": {}})
    return failures, notes, rows


def node_count_summary(extra: Dict) -> str:
    """Compact node-count cell for the markdown delta table.

    Node counts are the paper's own cost metric, so the job summary shows
    them next to the timings: a ``nodes_before``/``nodes_after`` pair (the
    reordering benchmarks) renders as ``before→after``, otherwise the
    ``*nodes*`` extras are listed by name.
    """
    counts = {key: value for key, value in extra.items()
              if "nodes" in key and isinstance(value, (int, float))
              and not isinstance(value, bool)}
    if not counts:
        return "—"
    before = next((counts[key] for key in counts if key.endswith("nodes_before")), None)
    after = next((counts[key] for key in counts if key.endswith("nodes_after")), None)
    if before is not None and after is not None:
        return f"{int(before)}→{int(after)}"
    return ", ".join(f"{key}={int(value)}"
                     for key, value in sorted(counts.items())[:2])


def write_markdown_summary(rows: List[Dict], notes: List[str],
                           destination: Path) -> None:
    """Append a before/after delta table (GitHub-flavoured markdown) to
    ``destination`` — pointed at ``$GITHUB_STEP_SUMMARY`` by CI so every run
    shows its deltas against the committed baseline in the job summary."""
    lines = ["", "## Benchmark delta vs committed baseline", ""]
    for note in notes:
        if note.startswith("calibration:"):
            lines.append(f"_{note}_")
            lines.append("")
            break
    lines.append("| benchmark | baseline (ms) | this run (ms) | delta "
                 "| nodes | status |")
    lines.append("|---|---:|---:|---:|---:|---|")
    for row in rows:
        base = row.get("baseline_seconds")
        actual = row.get("run_seconds")
        base_text = f"{base * 1e3:.4g}" if base is not None else "—"
        actual_text = f"{actual * 1e3:.4g}" if actual is not None else "—"
        if base and actual:
            delta = (actual / (base * row.get("scale", 1.0)) - 1.0) * 100.0
            delta_text = f"{delta:+.1f}%"
        else:
            delta_text = "—"
        nodes_text = node_count_summary(row.get("extra")
                                        or row.get("baseline_extra") or {})
        lines.append(f"| `{row['name']}` | {base_text} | {actual_text} "
                     f"| {delta_text} | {nodes_text} | {row['status']} |")
    lines.append("")
    with open(destination, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--run", required=True, type=Path,
                        help="pytest-benchmark JSON report of the smoke run")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline JSON (default: {DEFAULT_BASELINE})")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "1.25")),
                        help="allowed slowdown factor (default 1.25 = +25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead of checking")
    parser.add_argument("--markdown-summary", type=Path, default=None,
                        help="append a before/after delta table (markdown) to this "
                             "file; CI points it at $GITHUB_STEP_SUMMARY")
    args = parser.parse_args(argv)

    try:
        run = load_run(args.run)
    except FileNotFoundError:
        print(f"error: run report {args.run} not found (pass pytest-benchmark's "
              f"--benchmark-json output)", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: run report {args.run} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not run:
        print("error: the run report contains no benchmarks", file=sys.stderr)
        return 2

    if args.update:
        baseline = build_baseline(run)
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline rewritten: {args.baseline} ({len(run)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found (create it with --update)",
              file=sys.stderr)
        return 2
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures, notes, rows = check(run, baseline, args.threshold)
    for note in notes:
        print(f"  {note}")
    if args.markdown_summary is not None:
        write_markdown_summary(rows, notes, args.markdown_summary)
        print(f"markdown delta table appended to {args.markdown_summary}")
    if failures:
        print(f"\nBENCHMARK REGRESSION: {len(failures)} tracked metric(s) failed",
              file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate passed ({len(baseline.get('benchmarks', {}))} "
          f"tracked benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

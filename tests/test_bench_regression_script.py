"""Unit tests for ``scripts/check_bench_regression.py``.

The regression gate is itself gated here: the comparison rules (timing
threshold, deterministic-metric drift, missing families) and the markdown
job summary — in particular that benchmarks present only in the run report
are reported as **new** (a family awaiting its ``--update`` baseline entry),
never as failures and never mislabelled as tracked.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

SCRIPT = (Path(__file__).resolve().parent.parent / "scripts"
          / "check_bench_regression.py")


@pytest.fixture(scope="module")
def script():
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def baseline_of(entries):
    return {"_meta": {}, "benchmarks": entries}  # no calibration rescaling


class TestCheck:
    def test_matching_run_passes(self, script):
        entries = {"test_a": {"min_seconds": 0.01, "extra": {"nodes": 5}}}
        failures, _, rows = script.check(dict(entries), baseline_of(entries),
                                         threshold=1.25)
        assert failures == []
        assert [row["status"] for row in rows] == ["ok"]

    def test_slowdown_beyond_threshold_fails(self, script):
        base = {"test_a": {"min_seconds": 0.01, "extra": {}}}
        run = {"test_a": {"min_seconds": 0.02, "extra": {}}}
        failures, _, rows = script.check(run, baseline_of(base), threshold=1.25)
        assert len(failures) == 1 and "exceeds allowed" in failures[0]
        assert rows[0]["status"] == "REGRESSION"

    def test_deterministic_metric_drift_fails(self, script):
        base = {"test_a": {"min_seconds": 0.01, "extra": {"cache_misses": 7}}}
        run = {"test_a": {"min_seconds": 0.01, "extra": {"cache_misses": 8}}}
        failures, _, rows = script.check(run, baseline_of(base), threshold=1.25)
        assert any("deterministic metric" in failure for failure in failures)
        assert rows[0]["status"] == "metric drift"

    def test_baseline_family_missing_from_run_fails(self, script):
        base = {"test_gone": {"min_seconds": 0.01, "extra": {}}}
        failures, _, rows = script.check({}, baseline_of(base), threshold=1.25)
        assert any("missing from the run report" in failure
                   for failure in failures)
        assert rows[0]["status"] == "missing"

    def test_run_only_benchmark_is_new_not_a_failure(self, script):
        """A benchmark that exists only in the run report is a *new* family
        (its baseline entry lands with --update) — the gate must stay green
        and the row must say so."""
        run = {"test_fresh": {"min_seconds": 0.01, "extra": {"nodes": 3}}}
        failures, notes, rows = script.check(run, baseline_of({}),
                                             threshold=1.25)
        assert failures == []
        assert [row["status"] for row in rows] == ["new"]
        assert any("new benchmark" in note and "--update" in note
                   for note in notes)


class TestMarkdownSummary:
    def render(self, script, rows, notes=(), tmp_path=None):
        destination = tmp_path / "summary.md"
        script.write_markdown_summary(rows, list(notes), destination)
        return destination.read_text(encoding="utf-8")

    def test_new_benchmark_row_lists_as_new(self, script, tmp_path):
        run = {"test_fresh": {"min_seconds": 0.01, "extra": {}}}
        _, notes, rows = script.check(run, baseline_of({}), threshold=1.25)
        text = self.render(script, rows, notes, tmp_path)
        assert "| `test_fresh` |" in text
        assert "| new |" in text
        assert "untracked" not in text
        # No baseline time yet: the baseline and delta cells are em-dashes.
        row_line = next(line for line in text.splitlines()
                        if "test_fresh" in line)
        assert row_line.count("—") >= 2

    def test_tracked_row_shows_delta(self, script, tmp_path):
        entries = {"test_a": {"min_seconds": 0.01,
                              "extra": {"nodes_before": 50,
                                        "nodes_after": 20}}}
        _, notes, rows = script.check(dict(entries), baseline_of(entries),
                                      threshold=1.25)
        text = self.render(script, rows, notes, tmp_path)
        assert "| `test_a` |" in text
        assert "+0.0%" in text
        assert "50→20" in text  # the reordering before→after cell

    def test_summary_appends(self, script, tmp_path):
        destination = tmp_path / "summary.md"
        destination.write_text("existing content\n", encoding="utf-8")
        script.write_markdown_summary([], [], destination)
        text = destination.read_text(encoding="utf-8")
        assert text.startswith("existing content\n")
        assert "## Benchmark delta vs committed baseline" in text

"""Tests for the CHP-style stabilizer (tableau) simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.stabilizer import StabilizerSimulator
from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationTimeout, UnsupportedGateError
from repro.workloads.algorithms import bernstein_vazirani_circuit, ghz_circuit

from tests.conftest import build_circuit_from_ops, random_ops

CLIFFORD_OPS = ("x", "y", "z", "h", "s", "sdg", "rx", "ry", "cx", "cz", "swap")


def oracle_probability(circuit: QuantumCircuit, qubit: int, value: int) -> float:
    return StatevectorSimulator.simulate(circuit).probability_of_qubit(qubit, value)


class TestCliffordAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_single_qubit_probabilities_match_statevector(self, seed):
        num_qubits = 4
        circuit = build_circuit_from_ops(
            num_qubits, random_ops(num_qubits, 30, seed + 31, mnemonics=CLIFFORD_OPS))
        tableau = StabilizerSimulator.simulate(circuit)
        for qubit in range(num_qubits):
            expected = oracle_probability(circuit, qubit, 0)
            assert tableau.probability_of_qubit(qubit, 0) == pytest.approx(expected, abs=1e-9)

    def test_ghz_probabilities(self):
        circuit = ghz_circuit(5)
        tableau = StabilizerSimulator.simulate(circuit)
        for qubit in range(5):
            assert tableau.probability_of_qubit(qubit, 0) == pytest.approx(0.5)

    def test_ghz_measurement_correlations(self, rng):
        for _ in range(10):
            tableau = StabilizerSimulator.simulate(ghz_circuit(6))
            outcomes = tableau.measure_all(rng=rng)
            assert len(set(outcomes)) == 1  # all zeros or all ones

    def test_deterministic_measurement(self):
        circuit = QuantumCircuit(2).x(0)
        tableau = StabilizerSimulator.simulate(circuit)
        assert tableau.probability_of_qubit(0, 1) == 1.0
        assert tableau.measure_qubit(0) == 1
        assert tableau.measure_qubit(1) == 0

    def test_forced_outcome_with_zero_probability_rejected(self):
        tableau = StabilizerSimulator.simulate(QuantumCircuit(1).x(0))
        with pytest.raises(ValueError):
            tableau.measure_qubit(0, forced_outcome=0)

    def test_measurement_collapse_persists(self, rng):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        tableau = StabilizerSimulator.simulate(circuit)
        first = tableau.measure_qubit(0, rng=rng)
        # After collapsing qubit 0 the entangled partner is determined.
        assert tableau.probability_of_qubit(1, first) == 1.0
        assert tableau.measure_qubit(1, rng=rng) == first

    def test_clifford_bv_recovers_hidden_string(self):
        hidden = 0b1011010
        circuit = bernstein_vazirani_circuit(7, hidden_string=hidden)
        tableau = StabilizerSimulator.simulate(circuit)
        recovered = 0
        for qubit in range(7):
            bit = tableau.measure_qubit(qubit, forced_outcome=None)
            recovered = (recovered << 1) | bit
        assert recovered == hidden


class TestJointProbability:
    """Multi-qubit ``probability_of_outcome`` via the tableau rank method."""

    @pytest.mark.parametrize("seed", range(10))
    def test_joint_probabilities_match_statevector(self, seed):
        num_qubits = 4
        circuit = build_circuit_from_ops(
            num_qubits, random_ops(num_qubits, 30, seed + 57, mnemonics=CLIFFORD_OPS))
        tableau = StabilizerSimulator.simulate(circuit)
        dense = StatevectorSimulator.simulate(circuit)
        qubits = list(range(num_qubits))
        for outcome_bits in range(1 << num_qubits):
            outcome = [(outcome_bits >> (num_qubits - 1 - q)) & 1
                       for q in range(num_qubits)]
            expected = dense.probability_of_outcome(qubits, outcome)
            assert tableau.probability_of_outcome(qubits, outcome) == pytest.approx(
                expected, abs=1e-9)

    def test_ghz_joint_outcomes(self):
        tableau = StabilizerSimulator.simulate(ghz_circuit(6))
        qubits = list(range(6))
        assert tableau.probability_of_outcome(qubits, [0] * 6) == pytest.approx(0.5)
        assert tableau.probability_of_outcome(qubits, [1] * 6) == pytest.approx(0.5)
        assert tableau.probability_of_outcome(qubits, [0, 1, 0, 0, 0, 0]) == 0.0

    def test_partial_query_is_a_marginal(self):
        tableau = StabilizerSimulator.simulate(ghz_circuit(6))
        assert tableau.probability_of_outcome([0, 1], [0, 0]) == pytest.approx(0.5)
        assert tableau.probability_of_outcome([2], [1]) == pytest.approx(0.5)
        assert tableau.probability_of_outcome([0, 5], [1, 0]) == 0.0

    def test_query_does_not_collapse_the_state(self):
        tableau = StabilizerSimulator.simulate(ghz_circuit(4))
        before = [tableau.probability_of_qubit(q, 0) for q in range(4)]
        tableau.probability_of_outcome([0, 1, 2, 3], [1, 1, 1, 1])
        after = [tableau.probability_of_qubit(q, 0) for q in range(4)]
        assert before == after == [0.5] * 4

    def test_probability_halves_per_independent_random_qubit(self):
        # |+>^n: every queried qubit is an independent coin flip, so the
        # joint probability is 2**-k for a k-qubit query (the rank method).
        circuit = QuantumCircuit(5)
        for qubit in range(5):
            circuit.h(qubit)
        tableau = StabilizerSimulator.simulate(circuit)
        for width in range(1, 6):
            assert tableau.probability_of_outcome(
                list(range(width)), [0] * width) == pytest.approx(0.5 ** width)

    def test_copy_is_independent(self):
        tableau = StabilizerSimulator.simulate(ghz_circuit(3))
        clone = tableau.copy()
        clone.measure_qubit(0, forced_outcome=1)
        assert clone.probability_of_qubit(0, 1) == 1.0
        assert tableau.probability_of_qubit(0, 1) == 0.5


class TestGateSupport:
    def test_t_gate_rejected(self):
        tableau = StabilizerSimulator(1)
        with pytest.raises(UnsupportedGateError):
            tableau.run(QuantumCircuit(1).t(0))

    def test_toffoli_rejected(self):
        tableau = StabilizerSimulator(3)
        with pytest.raises(UnsupportedGateError):
            tableau.run(QuantumCircuit(3).ccx([0, 1], 2))

    def test_fredkin_rejected(self):
        tableau = StabilizerSimulator(3)
        with pytest.raises(UnsupportedGateError):
            tableau.run(QuantumCircuit(3).cswap([0], 1, 2))

    def test_single_control_toffoli_accepted(self):
        tableau = StabilizerSimulator(2)
        tableau.run(QuantumCircuit(2).x(0).ccx([0], 1))
        assert tableau.probability_of_qubit(1, 1) == 1.0

    def test_measure_marker_ignored(self):
        tableau = StabilizerSimulator(1)
        tableau.run(QuantumCircuit(1).h(0).measure(0))
        assert tableau.gates_applied == 1


class TestScalingAndLimits:
    def test_large_ghz_is_fast_and_small(self):
        num_qubits = 500
        tableau = StabilizerSimulator.simulate(ghz_circuit(num_qubits))
        assert tableau.probability_of_qubit(num_qubits - 1, 0) == pytest.approx(0.5)
        stats = tableau.statistics()
        assert stats["gates_applied"] == num_qubits
        assert stats["tableau_bytes"] < 10_000_000

    def test_timeout(self):
        circuit = ghz_circuit(200)
        with pytest.raises(SimulationTimeout):
            StabilizerSimulator(200, max_seconds=0.0).run(circuit)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StabilizerSimulator(2).run(QuantumCircuit(3).h(0))

    def test_repr(self):
        assert "StabilizerSimulator" in repr(StabilizerSimulator(2))

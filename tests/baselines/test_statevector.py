"""Tests for the dense statevector simulator (the floating-point oracle)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind, full_unitary

from tests.conftest import build_circuit_from_ops, random_ops


class TestGateApplication:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_explicit_unitaries(self, seed):
        """Applying gates one by one must equal multiplying the explicit
        full unitaries (paper Eq. 3)."""
        num_qubits = 3
        ops = random_ops(num_qubits, 12, seed + 11)
        circuit = build_circuit_from_ops(num_qubits, ops)
        simulator = StatevectorSimulator(num_qubits)
        state = np.zeros(1 << num_qubits, dtype=complex)
        state[0] = 1.0
        for gate in circuit.gates:
            simulator.apply_gate(gate)
            state = full_unitary(gate, num_qubits) @ state
        assert np.max(np.abs(simulator.state - state)) < 1e-12

    def test_initial_state(self):
        simulator = StatevectorSimulator(3, initial_state=0b101)
        assert simulator.amplitude(0b101) == 1.0
        assert simulator.norm() == pytest.approx(1.0)

    def test_norm_preserved(self):
        circuit = build_circuit_from_ops(4, random_ops(4, 40, 3))
        simulator = StatevectorSimulator.simulate(circuit)
        assert simulator.norm() == pytest.approx(1.0, abs=1e-10)

    def test_memory_guard(self):
        with pytest.raises(MemoryError):
            StatevectorSimulator(30, max_qubits=26)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StatevectorSimulator(2).run(QuantumCircuit(3).h(0))

    def test_measure_marker_ignored(self):
        simulator = StatevectorSimulator(1)
        simulator.apply_gate(Gate(GateKind.MEASURE, (0,)))
        assert simulator.amplitude(0) == 1.0


class TestProbabilities:
    def test_qubit_probability(self):
        circuit = QuantumCircuit(2).h(0)
        simulator = StatevectorSimulator.simulate(circuit)
        assert simulator.probability_of_qubit(0, 0) == pytest.approx(0.5)
        assert simulator.probability_of_qubit(1, 0) == pytest.approx(1.0)

    def test_outcome_probability(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = StatevectorSimulator.simulate(circuit)
        assert simulator.probability_of_outcome([0, 1], [1, 1]) == pytest.approx(0.5)
        assert simulator.probability_of_outcome([0, 1], [1, 0]) == pytest.approx(0.0)

    def test_distribution_and_marginal(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).x(2)
        simulator = StatevectorSimulator.simulate(circuit)
        joint = simulator.measurement_distribution()
        assert joint[0b001] == pytest.approx(0.5)
        assert joint[0b111] == pytest.approx(0.5)
        marginal = simulator.measurement_distribution([2])
        assert marginal == {1: pytest.approx(1.0)}

    def test_distribution_ordering_convention(self):
        # Qubit listed first is the most significant outcome bit.
        circuit = QuantumCircuit(2).x(1)
        simulator = StatevectorSimulator.simulate(circuit)
        assert simulator.measurement_distribution([1, 0]) == {0b10: pytest.approx(1.0)}


class TestMeasurement:
    def test_forced_collapse(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = StatevectorSimulator.simulate(circuit)
        outcome = simulator.measure_qubit(0, forced_outcome=1)
        assert outcome == 1
        assert simulator.probability_of_qubit(1, 1) == pytest.approx(1.0)
        assert simulator.norm() == pytest.approx(1.0)

    def test_zero_probability_collapse_rejected(self):
        simulator = StatevectorSimulator(1)
        with pytest.raises(ValueError):
            simulator.measure_qubit(0, forced_outcome=1)

    def test_random_measurement_statistics(self, rng):
        ones = 0
        for _ in range(200):
            simulator = StatevectorSimulator.simulate(QuantumCircuit(1).h(0))
            ones += simulator.measure_qubit(0, rng=rng)
        assert 60 <= ones <= 140

    def test_sampling(self, rng):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = StatevectorSimulator.simulate(circuit)
        counts = simulator.sample(500, rng=rng)
        assert set(counts) <= {0b00, 0b11}
        assert sum(counts.values()) == 500

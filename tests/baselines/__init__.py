"""Test package."""

"""Tests for the QMDD-style (DDSIM stand-in) decision diagram simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.qmdd import QmddSimulator
from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import NumericalError, SimulationMemoryExceeded, SimulationTimeout
from repro.harness.experiments import accuracy_circuit

from tests.conftest import assert_states_close, build_circuit_from_ops, random_ops


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_match_statevector(self, seed):
        num_qubits = 4
        circuit = build_circuit_from_ops(num_qubits, random_ops(num_qubits, 30, seed + 17))
        ours = QmddSimulator.simulate(circuit).to_numpy()
        reference = StatevectorSimulator.simulate(circuit).state
        assert_states_close(ours, reference, tol=1e-8)

    def test_basis_state_initialisation(self):
        simulator = QmddSimulator(3, initial_state=0b110)
        assert simulator.amplitude(0b110) == pytest.approx(1.0)
        assert simulator.norm_squared() == pytest.approx(1.0)

    def test_controls_below_target(self):
        # CNOT with the control on a *later* (lower) qubit than the target
        # exercises the non-trivial block construction of the gate DD.
        circuit = QuantumCircuit(3).x(2).cx(2, 0)
        simulator = QmddSimulator.simulate(circuit)
        assert simulator.amplitude(0b101) == pytest.approx(1.0)

    def test_toffoli_with_scattered_controls(self):
        circuit = QuantumCircuit(4).x(0).x(3).ccx([0, 3], 1)
        simulator = QmddSimulator.simulate(circuit)
        assert simulator.amplitude(0b1101) == pytest.approx(1.0)

    def test_swap_and_fredkin_decompositions(self):
        circuit = QuantumCircuit(3).x(1).swap(1, 2).x(0).cswap([0], 1, 2)
        ours = QmddSimulator.simulate(circuit).to_numpy()
        reference = StatevectorSimulator.simulate(circuit).state
        assert_states_close(ours, reference)

    def test_ghz_diagram_stays_linear(self):
        circuit = QuantumCircuit(30).h(0)
        for qubit in range(29):
            circuit.cx(qubit, qubit + 1)
        simulator = QmddSimulator.simulate(circuit)
        # A GHZ state needs O(n) live DD nodes, far below the dense 2^30;
        # the allocated pool (including intermediates) stays small too.
        assert simulator.num_reachable_nodes() < 100
        assert simulator.num_nodes() < 2000
        assert simulator.norm_squared() == pytest.approx(1.0, abs=1e-9)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QmddSimulator(2).run(QuantumCircuit(3).h(0))


class TestProbabilitiesAndMeasurement:
    def test_probability_queries_match_oracle(self):
        circuit = build_circuit_from_ops(3, random_ops(3, 20, 77))
        simulator = QmddSimulator.simulate(circuit)
        reference = StatevectorSimulator.simulate(circuit)
        for qubit in range(3):
            assert simulator.probability_of_qubit(qubit, 0) == pytest.approx(
                reference.probability_of_qubit(qubit, 0), abs=1e-8)
        assert simulator.probability_of_outcome([0, 2], [1, 0]) == pytest.approx(
            reference.probability_of_outcome([0, 2], [1, 0]), abs=1e-8)

    def test_distribution(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        distribution = QmddSimulator.simulate(circuit).measurement_distribution()
        assert distribution[0b00] == pytest.approx(0.5)
        assert distribution[0b11] == pytest.approx(0.5)

    def test_measurement_collapse(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = QmddSimulator.simulate(circuit)
        outcome = simulator.measure_qubit(0, forced_outcome=1)
        assert outcome == 1
        assert simulator.probability_of_qubit(1, 1) == pytest.approx(1.0)
        assert simulator.norm_squared() == pytest.approx(1.0, abs=1e-9)

    def test_zero_probability_collapse_rejected(self):
        simulator = QmddSimulator(1)
        with pytest.raises(ValueError):
            simulator.measure_qubit(0, forced_outcome=1)


class TestResourceAndErrorBehaviour:
    def test_memory_limit(self):
        circuit = build_circuit_from_ops(10, random_ops(10, 60, 5))
        with pytest.raises(SimulationMemoryExceeded):
            QmddSimulator(10, max_nodes=8).run(circuit)

    def test_time_limit(self):
        circuit = build_circuit_from_ops(6, random_ops(6, 60, 5))
        with pytest.raises(SimulationTimeout):
            QmddSimulator(6, max_seconds=0.0).run(circuit)

    def test_norm_drift_raises_numerical_error(self):
        """With a very coarse tolerance the norm check must eventually fire,
        reproducing the paper's 'error' outcome for DDSIM."""
        circuit = accuracy_circuit(num_qubits=5, layers=200)
        simulator = QmddSimulator(5, tolerance=1e-2, error_threshold=1e-3)
        with pytest.raises(NumericalError):
            simulator.run(circuit)

    def test_precision_loss_grows_with_tolerance(self):
        circuit = accuracy_circuit(num_qubits=5, layers=24)
        drifts = []
        for tolerance in (1e-4, 1e-8, 1e-12):
            simulator = QmddSimulator(5, tolerance=tolerance, error_threshold=float("inf"))
            simulator.run(circuit)
            drifts.append(abs(simulator.norm_squared() - 1.0))
        assert drifts[0] > drifts[2]

    def test_statistics(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = QmddSimulator.simulate(circuit)
        stats = simulator.statistics()
        assert stats["gates_applied"] == 2
        assert stats["dd_nodes"] >= 1
        assert stats["norm"] == pytest.approx(1.0, abs=1e-9)
        assert "QmddSimulator" in repr(simulator)

"""Differential proof that the BDD substrates are interchangeable.

The substrate contract (see ``docs/substrate.md``): the ``dict``, ``array``
and ``compiled`` backends produce **node-for-node identical DAGs** — same
node ids, same (var, low, high) triples, same free lists, same peaks — for
the same sequence of operations, because node ids are a pure function of
find-or-create order and every backend preserves that order.  This module
*proves* the contract differentially:

* hypothesis-generated random circuits run on every backend and the raw
  storage columns are compared entry-for-entry,
* the adversarial regimes that broke early drafts (GC every gate, eviction
  pressure, dynamic reordering) are pinned explicitly,
* end-to-end: ``repro.run`` serialisations are byte-identical and fixed-seed
  sampled counts are equal across backends,
* the registry's backend-selection and fallback rules are pinned.

The compiled backend is exercised through :class:`CompiledBddManager`
directly (its pure-Python interpreted kernel path), so the differential
guarantee holds with or without numba installed.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.bdd import (
    ArrayBddManager,
    BddManager,
    DEFAULT_SUBSTRATE,
    SUBSTRATES,
    available_substrates,
    create_manager,
    resolve_substrate,
)
from repro.core.simulator import BitSliceSimulator
from tests.conftest import OP_ARITY, build_circuit_from_ops, ghz, random_ops

try:  # the kernel module needs numpy; the suite runs without it otherwise
    from repro.bdd._compiled import HAS_NUMBA, CompiledBddManager
except ImportError:  # pragma: no cover - numpy-less environments
    CompiledBddManager = None
    HAS_NUMBA = False

#: (backend name, manager factory) pairs under differential test.  The
#: compiled manager is constructed directly — without numba its kernel runs
#: interpreted, which is exactly the semantics the differential harness
#: must prove equal.
BACKENDS = [("dict", BddManager), ("array", ArrayBddManager)]
if CompiledBddManager is not None:
    BACKENDS.append(("compiled", CompiledBddManager))

NUM_QUBITS = 4


def storage_snapshot(manager):
    """The raw node store as plain lists: the strongest equality there is.

    Node-for-node identity means the (var, low, high) columns agree at every
    id, the recycled-slot free list agrees element-for-element (order
    included — it feeds future id assignment), and the unique table lists
    the same node ids in the same insertion order (which fixes the GC sweep
    order).  The unique *keys* are backend-specific encodings of the same
    triples — packed ints on the array backends — so only the id sequence is
    compared; the triples themselves are covered by the columns.
    """
    return {
        "var": list(manager._var),
        "low": list(manager._low),
        "high": list(manager._high),
        "free": list(manager._free),
        "unique": list(manager._unique.values()),
    }


def run_on_backend(factory, circuit, auto_gc_threshold=None,
                   auto_reorder_threshold=None):
    """Execute ``circuit`` on a fresh manager from ``factory``."""
    manager = factory(circuit.num_qubits)
    if auto_gc_threshold is not None:
        manager.auto_gc_threshold = auto_gc_threshold
    simulator = BitSliceSimulator(
        circuit.num_qubits, manager=manager,
        auto_reorder_threshold=auto_reorder_threshold)
    simulator.run(circuit)
    return simulator


def assert_same_dag(simulators):
    """Assert every simulator's manager holds the identical node store."""
    reference = storage_snapshot(simulators[0].state.manager)
    for simulator in simulators[1:]:
        snapshot = storage_snapshot(simulator.state.manager)
        for field in reference:
            assert snapshot[field] == reference[field], field
    peaks = {sim.peak_nodes for sim in simulators}
    assert len(peaks) == 1
    amplitudes = {sim.amplitude(0) for sim in simulators}
    assert len(amplitudes) == 1


@st.composite
def op_lists(draw, max_size=24):
    size = draw(st.integers(min_value=0, max_value=max_size))
    usable = [m for m in OP_ARITY if OP_ARITY[m] <= NUM_QUBITS]
    ops = []
    for _ in range(size):
        mnemonic = draw(st.sampled_from(usable))
        qubits = draw(st.permutations(list(range(NUM_QUBITS))))
        ops.append((mnemonic, tuple(qubits[:OP_ARITY[mnemonic]])))
    return ops


class TestDifferentialRandomCircuits:
    """Hypothesis-driven node-for-node equality across all backends."""

    @settings(max_examples=25, deadline=None)
    @given(op_lists())
    def test_same_dag_on_random_circuits(self, ops):
        circuit = build_circuit_from_ops(NUM_QUBITS, ops)
        assert_same_dag([run_on_backend(factory, circuit)
                         for _, factory in BACKENDS])

    @settings(max_examples=10, deadline=None)
    @given(op_lists())
    def test_same_dag_under_gc_every_gate(self, ops):
        """auto_gc_threshold=1 forces a sweep at every gate boundary, so id
        recycling (the free list) is exercised constantly — the regime that
        distinguishes true id-identity from mere isomorphism."""
        circuit = build_circuit_from_ops(NUM_QUBITS, ops)
        assert_same_dag([run_on_backend(factory, circuit, auto_gc_threshold=1)
                         for _, factory in BACKENDS])

    @settings(max_examples=10, deadline=None)
    @given(op_lists())
    def test_same_dag_under_reordering(self, ops):
        """A tiny reorder threshold makes growth-triggered sifting fire; the
        in-place swaps must rewire every backend's columns identically."""
        circuit = build_circuit_from_ops(NUM_QUBITS, ops)
        assert_same_dag([run_on_backend(factory, circuit,
                                        auto_reorder_threshold=8)
                         for _, factory in BACKENDS])


class TestDifferentialPinnedRegimes:
    """Named adversarial circuits (the ones that broke development drafts)."""

    def test_ghz_ladder(self):
        assert_same_dag([run_on_backend(factory, ghz(8))
                         for _, factory in BACKENDS])

    def test_deep_random_circuit(self):
        circuit = build_circuit_from_ops(6, random_ops(6, 120, seed=7),
                                         name="deep6")
        assert_same_dag([run_on_backend(factory, circuit)
                         for _, factory in BACKENDS])

    def test_gc_and_reorder_combined(self):
        circuit = build_circuit_from_ops(5, random_ops(5, 80, seed=23),
                                         name="squeeze5")
        assert_same_dag([run_on_backend(factory, circuit,
                                        auto_gc_threshold=64,
                                        auto_reorder_threshold=32)
                         for _, factory in BACKENDS])


class TestEndToEndIdentity:
    """The user-visible consequences of DAG identity."""

    @pytest.mark.parametrize("substrate", ["array", "auto", "compiled"])
    def test_run_serialisation_is_byte_identical(self, substrate):
        circuit = ghz(6)
        cold = repro.run(circuit, engine="bitslice", substrate="dict")
        other = repro.run(circuit, engine="bitslice", substrate=substrate)
        assert (json.dumps(other.to_dict(timings=False), sort_keys=True)
                == json.dumps(cold.to_dict(timings=False), sort_keys=True))

    def test_peak_memory_nodes_identical(self):
        circuit = build_circuit_from_ops(5, random_ops(5, 60, seed=3))
        peaks = {repro.run(circuit, engine="bitslice",
                           substrate=name).peak_memory_nodes
                 for name in available_substrates()}
        assert len(peaks) == 1

    def test_fixed_seed_counts_identical(self):
        circuit = ghz(5, measure=True)
        counts = [repro.run(circuit, engine="bitslice", substrate=name,
                            shots=128, seed=11).counts
                  for name in available_substrates()]
        assert all(c == counts[0] for c in counts[1:])
        assert sum(counts[0].values()) == 128

    def test_backend_gauge_reports_selection(self):
        circuit = ghz(3)
        assert repro.run(circuit, engine="bitslice",
                         substrate="dict").extra["substrate_backend"] == 0
        assert repro.run(circuit, engine="bitslice",
                         substrate="array").extra["substrate_backend"] == 1


class TestBackendSelection:
    """Registry resolution and the no-numba fallback contract."""

    def test_default_is_dict(self):
        assert DEFAULT_SUBSTRATE == "dict"
        assert resolve_substrate(None) == "dict"
        assert isinstance(create_manager(2), BddManager)
        assert not isinstance(create_manager(2), ArrayBddManager)

    def test_registry_names(self):
        assert set(SUBSTRATES) == {"dict", "array", "compiled"}
        assert set(available_substrates()) <= {"dict", "array", "compiled"}
        assert "dict" in available_substrates()

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError, match="substrate"):
            resolve_substrate("cudd")
        with pytest.raises(ValueError, match="substrate"):
            create_manager(2, substrate="cudd")

    def test_array_selection(self):
        manager = create_manager(3, substrate="array")
        assert isinstance(manager, ArrayBddManager)
        assert manager.substrate_name == "array"
        assert manager.perf_stats()["backend"] == 1

    def test_compiled_falls_back_without_numba(self):
        """Requesting ``compiled`` must never fail: without numba it
        resolves to the array backend (the fallback contract pinned by the
        CI ``no-numba`` job)."""
        resolved = resolve_substrate("compiled")
        manager = create_manager(3, substrate="compiled")
        if HAS_NUMBA:  # pragma: no cover - container has no numba
            assert resolved == "compiled"
            assert manager.substrate_name == "compiled"
        else:
            assert resolved == "array"
            assert isinstance(manager, ArrayBddManager)
            assert manager.substrate_name == "array"

    def test_auto_prefers_compiled_only_with_numba(self):
        expected = "compiled" if HAS_NUMBA else "dict"
        assert resolve_substrate("auto") == expected

    def test_capability_flag_and_default_configure(self):
        from repro.engines.registry import create_engine

        bitslice = create_engine("bitslice")
        dense = create_engine("statevector")
        assert bitslice.capabilities.supports_compiled_substrate
        assert not dense.capabilities.supports_compiled_substrate
        assert bitslice.configure_substrate("array")
        assert not dense.configure_substrate("array")

    def test_mixed_engine_sweep_accepts_substrate(self):
        results = repro.run_sweep([ghz(3)],
                                  engines=["bitslice", "statevector"],
                                  substrate="array")
        assert [r.status for r in results] == ["ok", "ok"]
        assert results[0].extra["substrate_backend"] == 1


@pytest.mark.skipif(CompiledBddManager is None,
                    reason="compiled kernel module needs numpy")
class TestCompiledManager:
    """Compiled-specific behaviour: counters, fallback, jit gating."""

    def test_kernel_counters_surface(self):
        simulator = run_on_backend(CompiledBddManager, ghz(6))
        stats = simulator.state.manager.perf_stats()
        assert stats["backend"] == 2
        assert stats["compiled_calls"] > 0
        assert stats["compiled_fallbacks"] == 0
        run_stats = simulator.statistics()
        assert run_stats["substrate_compiled_calls"] == stats["compiled_calls"]

    def test_jit_true_requires_numba(self):
        if HAS_NUMBA:  # pragma: no cover - container has no numba
            CompiledBddManager(2, jit=True)
        else:
            with pytest.raises(ImportError, match="numba"):
                CompiledBddManager(2, jit=True)

    def test_reset_perf_counters_clears_compiled_counters(self):
        manager = CompiledBddManager(3)
        a, b = manager.var(0), manager.var(1)
        manager.apply_and(a.node, b.node)
        assert manager.perf_stats()["compiled_calls"] > 0
        manager.reset_perf_counters()
        assert manager.perf_stats()["compiled_calls"] == 0
        assert manager.perf_stats()["compiled_fallbacks"] == 0

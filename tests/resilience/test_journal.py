"""Crash-safe sweep journal: kill a sweep mid-grid, resume byte-identically.

The acceptance gate of the resilience PR lives here: a seeded fault plan
kills a journalled sweep partway, the journal survives (including a
truncated trailing line), and the resumed sweep's deterministic
serialisation is byte-identical to an uninterrupted run — on the serial
and the parallel path alike.
"""

from __future__ import annotations

import json

import pytest

from repro.engines.frontdoor import run_tasks
from repro.engines.limits import ResourceLimits
from repro.resilience.faults import (
    FAULT_JOURNAL_WRITE,
    FAULT_LIMITS_CHECK,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active,
)
from repro.resilience.journal import SweepJournal, open_journal, task_key
from repro.workloads.random_circuits import generate_random_circuit


def _tasks(count=4, num_qubits=4, num_gates=8):
    circuits = [generate_random_circuit(num_qubits, num_gates, seed=s)
                for s in range(count)]
    return [("bitslice", circuit) for circuit in circuits]


def _deterministic(results):
    return [result.to_dict(timings=False) for result in results]


def test_round_trip_replay_marker_and_first_writer_wins(tmp_path):
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=2)
    results = run_tasks(tasks, shots=8, seed=3, journal=path)
    journal = SweepJournal(path)
    assert len(journal) == 2
    assert journal.skipped_lines == 0
    key = journal.keys()[0]
    replayed = journal.lookup(key)
    assert replayed.extra["journal_replayed"] == 1
    # The marker is provenance, excluded from deterministic serialisation.
    assert replayed.to_dict(timings=False) in _deterministic(results)
    # Re-recording an existing key (or a replayed result) is a no-op.
    journal.record(key, results[0])
    journal.record("fresh-key", replayed)  # replayed results never re-journal
    assert "fresh-key" not in journal
    assert "entries" in journal.dump()


def test_truncated_trailing_line_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "journal.jsonl"
    run_tasks(_tasks(count=3), shots=4, seed=1, journal=path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:25])
    journal = SweepJournal(path)
    assert len(journal) == 2
    assert journal.skipped_lines == 1


def test_corrupt_result_payload_reruns_the_task(tmp_path):
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=2)
    baseline = _deterministic(run_tasks(tasks, shots=4, seed=2))
    run_tasks(tasks, shots=4, seed=2, journal=path)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    records[0]["result"] = {"nonsense": True}
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    journal = SweepJournal(path)
    assert len(journal) == 1 and journal.skipped_lines == 1
    resumed = run_tasks(tasks, shots=4, seed=2, journal=journal)
    assert _deterministic(resumed) == baseline


def test_killed_sweep_resumes_byte_identically_serial(tmp_path):
    """The acceptance pin: a seeded fault kills the sweep mid-grid; the
    journalled resume reproduces the uninterrupted run byte for byte."""
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=4, num_gates=8)
    baseline = _deterministic(run_tasks(tasks, shots=8, seed=5))
    # Each of these tasks hits limits.check 13 times (post-prepare poll +
    # one per instruction); ordinal 20 lands inside task 1, so exactly one
    # task is journalled before the "crash".
    plan = FaultPlan([FaultRule(FAULT_LIMITS_CHECK, on_hit=20)], seed=0)
    with active(plan):
        with pytest.raises(InjectedFault):
            run_tasks(tasks, shots=8, seed=5, journal=path)
    assert plan.fires() == {FAULT_LIMITS_CHECK: 1}
    journal = SweepJournal(path)
    assert 0 < len(journal) < len(tasks)
    completed_before = len(journal)
    resumed = run_tasks(tasks, shots=8, seed=5, journal=path)
    assert _deterministic(resumed) == baseline
    replayed = sum(1 for r in resumed if r.extra.get("journal_replayed"))
    assert replayed == completed_before


def test_killed_sweep_resumes_byte_identically_parallel(tmp_path):
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=4)
    baseline = _deterministic(run_tasks(tasks, shots=8, seed=5))
    plan = FaultPlan([FaultRule(FAULT_LIMITS_CHECK, on_hit=20)], seed=0)
    with active(plan):
        with pytest.raises(InjectedFault):
            run_tasks(tasks, shots=8, seed=5, journal=path)
    resumed = run_tasks(tasks, shots=8, seed=5, jobs=2, journal=path)
    assert _deterministic(resumed) == baseline
    # A second resume replays everything — nothing recomputes.
    again = run_tasks(tasks, shots=8, seed=5, jobs=2, journal=path)
    assert _deterministic(again) == baseline
    assert all(r.extra.get("journal_replayed") for r in again)


def test_terminal_statuses_are_journalled_and_replayed(tmp_path):
    """A timeout under the limits is as deterministic as an ok — it is
    journalled and a resume replays it instead of re-timing-out."""
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=2)
    limits = ResourceLimits(max_seconds=0.0)
    first = run_tasks(tasks, limits=limits, journal=path)
    assert all(result.status == "TO" for result in first)
    resumed = run_tasks(tasks, limits=limits, journal=path)
    assert all(r.extra.get("journal_replayed") for r in resumed)
    assert _deterministic(resumed) == _deterministic(first)


def test_journal_write_fault_never_corrupts_previous_entries(tmp_path):
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=3)
    baseline = _deterministic(run_tasks(tasks, shots=4, seed=7))
    plan = FaultPlan([FaultRule(FAULT_JOURNAL_WRITE, on_hit=2)], seed=0)
    with active(plan):
        with pytest.raises(InjectedFault):
            run_tasks(tasks, shots=4, seed=7, journal=path)
    journal = SweepJournal(path)
    assert len(journal) == 1 and journal.skipped_lines == 0
    resumed = run_tasks(tasks, shots=4, seed=7, journal=path)
    assert _deterministic(resumed) == baseline


def test_task_key_separates_index_seed_and_circuit():
    circuit = generate_random_circuit(3, 6, seed=0)
    other = generate_random_circuit(3, 6, seed=1)
    base = task_key(0, "bitslice", circuit, 8, 5, None)
    assert base == task_key(0, "bitslice", circuit, 8, 5, None)
    assert base != task_key(1, "bitslice", circuit, 8, 5, None)
    assert base != task_key(0, "qmdd", circuit, 8, 5, None)
    assert base != task_key(0, "bitslice", other, 8, 5, None)
    assert base != task_key(0, "bitslice", circuit, 8, 6, None)
    assert base != task_key(0, "bitslice", circuit, None, 5, None)


def test_open_journal_coercions(tmp_path):
    assert open_journal(None) is None
    journal = SweepJournal(tmp_path / "j.jsonl")
    assert open_journal(journal) is journal
    assert isinstance(open_journal(tmp_path / "j2.jsonl"), SweepJournal)


def test_complete_final_line_without_newline_is_kept(tmp_path):
    """Regression: a crash after the final record's bytes but before its
    newline used to drop a *complete* entry.  A parseable unterminated
    final line now loads like any other record."""
    path = tmp_path / "journal.jsonl"
    run_tasks(_tasks(count=2), shots=4, seed=6, journal=path)
    text = path.read_text()
    assert text.endswith("\n")
    path.write_text(text.rstrip("\n"))  # the torn-newline crash shape
    journal = SweepJournal(path)
    assert len(journal) == 2
    assert journal.skipped_lines == 0
    resumed = run_tasks(_tasks(count=2), shots=4, seed=6, journal=path)
    assert all(r.extra.get("journal_replayed") for r in resumed)


def test_append_after_unterminated_line_never_fuses_records(tmp_path):
    """Appends are newline-safe: recording into a journal whose last line
    lacks its newline first repairs the termination, so the new record
    never concatenates onto the previous one."""
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=3)
    baseline = _deterministic(run_tasks(tasks, shots=4, seed=8))
    run_tasks(tasks[:2], shots=4, seed=8, journal=path)
    path.write_text(path.read_text().rstrip("\n"))
    resumed = run_tasks(tasks, shots=4, seed=8, journal=path)
    assert _deterministic(resumed) == baseline
    # All three records load back individually — nothing fused.
    journal = SweepJournal(path)
    assert len(journal) == 3
    assert journal.skipped_lines == 0
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    for line in lines:
        json.loads(line)


def test_checkpoint_pointer_records(tmp_path):
    """Pointer records: idempotent per (key, path), superseded by a
    result, invisible to ``len()`` and replay."""
    path = tmp_path / "journal.jsonl"
    tasks = _tasks(count=2)
    journal = SweepJournal(path)
    journal.record_checkpoint("task-a", "/ckpts/task-a.ckpt")
    journal.record_checkpoint("task-a", "/ckpts/task-a.ckpt")  # no-op twin
    assert journal.latest_checkpoint("task-a") == "/ckpts/task-a.ckpt"
    assert len(journal) == 0
    assert len(path.read_text().splitlines()) == 1
    # The pointer survives a reload ...
    reloaded = SweepJournal(path)
    assert reloaded.latest_checkpoint("task-a") == "/ckpts/task-a.ckpt"
    assert reloaded.skipped_lines == 0
    # ... and a recorded result retires it.
    results = run_tasks(tasks, shots=4, seed=9, journal=reloaded)
    key = reloaded.keys()[0]
    reloaded.record_checkpoint(key, "/ckpts/late.ckpt")  # after a result
    assert reloaded.latest_checkpoint(key) is None
    assert reloaded.lookup(key) is not None
    assert _deterministic(run_tasks(tasks, shots=4, seed=9,
                                    journal=path)) \
        == _deterministic(results)


def test_malformed_pointer_records_are_skipped(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.record_checkpoint("good", "/ckpts/good.ckpt")
    with open(path, "a") as handle:
        handle.write(json.dumps({"v": 1, "key": "bad",
                                 "checkpoint": {"path": 7}}) + "\n")
        handle.write(json.dumps({"v": 1, "key": 3,
                                 "checkpoint": {"path": "/x"}}) + "\n")
    reloaded = SweepJournal(path)
    assert reloaded.latest_checkpoint("good") == "/ckpts/good.ckpt"
    assert reloaded.latest_checkpoint("bad") is None
    assert reloaded.skipped_lines == 2

"""SIGKILL chaos: checkpointed work survives real process death.

The acceptance gates of the checkpointing PR, driven through actual
subprocesses killed with ``SIGKILL`` (no atexit, no flush, no mercy):

* a checkpointed + journalled sweep killed mid-grid resumes
  byte-identically — finished tasks replay from the journal, the
  in-flight task restores its per-gate snapshot;
* a ``repro-serve --checkpoint-dir`` server killed with live sessions
  comes back serving the *same* session ids warm, and closing them
  leaks nothing.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time

import repro
from repro import Client, QuantumCircuit, ServiceError
from repro.engines.frontdoor import run_tasks
from tests.conftest import universal_mix

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

SWEEP_DRIVER = """
import json, sys
from repro.engines.frontdoor import run_tasks
from tests.conftest import universal_mix

journal, ckpt_dir, out = sys.argv[1], sys.argv[2], sys.argv[3]
tasks = [("bitslice", universal_mix(5, seed=s, measure=True))
         for s in (71, 72, 73)]
results = run_tasks(tasks, shots=32, seed=11, journal=journal,
                    checkpoint_every=1, checkpoint_dir=ckpt_dir)
with open(out, "w") as handle:
    json.dump([r.to_dict(timings=False) for r in results], handle,
              sort_keys=True)
print("SWEEP-DONE", flush=True)
"""


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), REPO_ROOT,
                    env.get("PYTHONPATH")) if p)
    return env


def _wait_until(predicate, deadline=30.0, interval=0.005):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_sigkilled_checkpointed_sweep_resumes_byte_identically(tmp_path):
    tasks = [("bitslice", universal_mix(5, seed=s, measure=True))
             for s in (71, 72, 73)]
    baseline = [r.to_dict(timings=False)
                for r in run_tasks(tasks, shots=32, seed=11)]
    journal = tmp_path / "journal.jsonl"
    ckpt_dir = tmp_path / "ckpts"
    out = tmp_path / "results.json"
    argv = [sys.executable, "-c", SWEEP_DRIVER, str(journal),
            str(ckpt_dir), str(out)]

    # --- first attempt: SIGKILL at a seeded random point mid-sweep. ---
    victim = subprocess.Popen(argv, env=_subprocess_env(), cwd=REPO_ROOT,
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    try:
        started = _wait_until(
            lambda: ckpt_dir.is_dir() and any(
                name.endswith(".ckpt") for name in os.listdir(ckpt_dir)))
        time.sleep(random.Random(2026).uniform(0.0, 0.15))
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        if victim.poll() is None:  # pragma: no cover - cleanup guard
            victim.kill()
    assert started, "the sweep never wrote its first checkpoint"
    assert not out.exists(), "SIGKILL landed after the sweep finished; " \
        "shrink the kill delay"

    # --- second attempt: same command, runs to completion by resuming. -
    completed = subprocess.run(argv, env=_subprocess_env(), cwd=REPO_ROOT,
                               capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr
    assert "SWEEP-DONE" in completed.stdout
    assert json.loads(out.read_text()) == baseline
    # Success cleaned up: no checkpoint survives a journalled result.
    assert [n for n in os.listdir(ckpt_dir) if n.endswith(".ckpt")] == []
    # The resume really reused prior progress: at least one journalled
    # task (or one checkpoint pointer) predates the second attempt.
    lines = [json.loads(line)
             for line in journal.read_text().splitlines()]
    assert any("checkpoint" in record for record in lines)
    assert sum(1 for record in lines if "result" in record) == len(tasks)


class _ServeProcess:
    """A real ``repro-serve`` child on a unix socket."""

    def __init__(self, sock, ckpt_dir):
        self.sock = str(sock)
        self.proc = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.service.server import main; import sys; "
             "sys.exit(main(sys.argv[1:]))",
             "--unix", self.sock, "--checkpoint-dir", str(ckpt_dir),
             "--workers", "1"],
            env=_subprocess_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

    def wait_ready(self):
        assert _wait_until(self._responds), "server never became ready"

    def _responds(self):
        if self.proc.poll() is not None:
            raise AssertionError(
                f"repro-serve exited early: {self.proc.stdout.read()}")
        if not os.path.exists(self.sock):
            return False
        try:
            with Client(f"unix:{self.sock}", timeout=5.0) as client:
                return client.health()["state"] == "ok"
        except (ServiceError, OSError):
            return False

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def shutdown(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - guard
                self.proc.kill()
                self.proc.wait(timeout=30)


def test_sigkilled_server_serves_prerestart_session_warm(tmp_path):
    sock = tmp_path / "repro.sock"
    ckpt_dir = tmp_path / "ckpts"
    base = QuantumCircuit(4, name="base").h(0).cx(0, 1)
    delta = QuantumCircuit(4, name="delta").cx(1, 2).cx(2, 3)
    tail = QuantumCircuit(4, name="tail").t(0).h(3)

    first = _ServeProcess(sock, ckpt_dir)
    try:
        first.wait_ready()
        with Client(f"unix:{sock}") as client:
            session_id = client.open_session(4, engine="bitslice")
            assert client.append(session_id, base).status == "ok"
            assert client.append(session_id, delta).status == "ok"
            assert client.health()["checkpointed_sessions"] == 1
        first.sigkill()
    finally:
        first.shutdown()
    # SIGKILL left the on-disk state exactly as the last append wrote it.
    assert sorted(os.listdir(ckpt_dir / "sessions")) \
        == [f"{session_id}.ckpt"]

    second = _ServeProcess(sock, ckpt_dir)
    try:
        second.wait_ready()  # start() replaces the stale socket file
        cumulative = base.copy(name="tail")
        for gate in delta.gates:
            cumulative.append(gate)
        for gate in tail.gates:
            cumulative.append(gate)
        expected = repro.run(cumulative,
                             engine="bitslice").to_dict(timings=False)
        with Client(f"unix:{sock}") as client:
            assert client.health()["restored_sessions"] == 1
            rows = client.sessions()
            assert [row["session_id"] for row in rows] == [session_id]
            assert rows[0]["appends"] == 2
            result = client.append(session_id, tail)
            assert result.status == "ok"
            assert (result.extra["resumed_from_depth"]
                    == base.num_gates + delta.num_gates)
            assert result.to_dict(timings=False) == expected
            assert client.close_session(session_id) == 3
            assert client.sessions() == []
        assert os.listdir(ckpt_dir / "sessions") == []  # zero leaked
    finally:
        second.shutdown()

"""Server chaos: seeded fault storms against a real server, real sockets.

Every test arms a seeded :class:`FaultPlan` (the server runs in-process,
so its worker threads see the plan) and asserts the two invariants the
resilience PR guarantees: **no leaks** (workers alive, queue empty, no
stranded jobs or sessions, chain locks re-acquirable) and **byte-identical
results** — a retried, replayed or resumed request serialises exactly like
its undisturbed twin.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro import Client, QuantumCircuit, ServiceError
from repro.engines.frontdoor import run_tasks
from repro.harness.experiments import accuracy_circuit
from repro.perf.counters import PerfCounters
from repro.resilience.faults import (
    FAULT_CLIENT_RECV,
    FAULT_WORKER_JOB,
    FAULT_WORKER_LOOP,
    FaultPlan,
    FaultRule,
    active,
)
from repro.resilience.retry import RetryPolicy
from repro.service import serve_background
from repro.service.client import AsyncClient
from repro.service.protocol import (
    AppendToSession,
    JobAccepted,
    RunCompleted,
    SubmitRun,
)
from repro.workloads.random_circuits import generate_random_circuit
from tests.conftest import ghz

QUICK = ghz(2, name="quick")
#: ~0.2 s bit-sliced — long enough that concurrent submissions pile up.
MODERATE = accuracy_circuit(6, 8)


def _deterministic(results):
    return [result.to_dict(timings=False) for result in results]


def test_worker_crash_storm_100_jobs_leaves_no_leaks():
    """100 jobs under a seeded 15%/15% storm of machinery and in-job
    crashes: every failure is a structured ``internal`` reply, both
    workers stay alive, nothing leaks, and the survivors (and every job
    after the storm) stay byte-identical to a local run."""
    expected = repro.run(QUICK, engine="bitslice", shots=4,
                         seed=9).to_dict(timings=False)
    plan = FaultPlan([
        FaultRule(FAULT_WORKER_LOOP, probability=0.15, times=None),
        FaultRule(FAULT_WORKER_JOB, probability=0.15, times=None),
    ], seed=42)
    crashed = survived = 0
    with serve_background(workers=2, queue_depth=16) as background:
        with Client(background.address) as client:
            with active(plan):
                for _ in range(100):
                    try:
                        result = client.run(QUICK, engine="bitslice",
                                            shots=4, seed=9)
                    except ServiceError as exc:
                        assert exc.code == "internal"
                        crashed += 1
                    else:
                        assert result.to_dict(timings=False) == expected
                        survived += 1
            assert crashed > 0 and survived > 0
            assert crashed + survived == 100
            health = client.health()
            assert health["state"] == "ok"
            assert health["workers_alive"] == health["workers"] == 2
            assert health["queue_depth"] == 0
            assert health["running"] == 0
            assert client.sessions() == []
            counters = client.stats()["counters"]
            assert counters.get("service_worker_crashes", 0) >= 1
            after = client.run(QUICK, engine="bitslice", shots=4, seed=9)
            assert after.to_dict(timings=False) == expected


def test_idempotent_replay_reattaches_instead_of_reexecuting():
    """Two submissions carrying the same idempotency key are one job: the
    replay answers with the original job id and the identical result."""
    with serve_background(workers=1, queue_depth=8) as background:
        with Client(background.address) as client:
            request = SubmitRun(QUICK, engine="bitslice", shots=4, seed=9,
                                idempotency_key="fixed-key-1")
            first_id = client._send(request)
            first = client._wait(first_id, accept=(RunCompleted,),
                                 intermediate=(JobAccepted,))
            second_id = client._send(request)
            second = client._wait(second_id, accept=(RunCompleted,),
                                  intermediate=(JobAccepted,))
            assert second.job_id == first.job_id
            assert (second.result.to_dict(timings=False)
                    == first.result.to_dict(timings=False))
            counters = client.stats()["counters"]
            assert counters.get("service_idempotent_replays", 0) == 1


def test_dropped_terminal_reply_retries_byte_identically():
    """The socket dies exactly while the client reads its terminal reply;
    the retry reconnects, resends under the same idempotency key, and the
    result is byte-identical to an undisturbed run."""
    expected = repro.run(QUICK, engine="bitslice", shots=4,
                         seed=9).to_dict(timings=False)
    with serve_background(workers=1, queue_depth=8) as background:
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, seed=3)
        with Client(background.address, retry=policy) as client:
            plan = FaultPlan([FaultRule(FAULT_CLIENT_RECV, on_hit=2,
                                        exception=ConnectionResetError)],
                             seed=0)
            with active(plan):
                result = client.run(QUICK, engine="bitslice", shots=4,
                                    seed=9)
            assert plan.fires() == {FAULT_CLIENT_RECV: 1}
            assert result.to_dict(timings=False) == expected


def test_sweep_with_dropped_reply_matches_local_serial_run():
    """A whole wire sweep whose terminal reply is dropped mid-read still
    comes back byte-identical to ``run_tasks`` executed locally."""
    circuits = [generate_random_circuit(n, seed=60 + n) for n in (4, 5)]
    tasks = [(engine, circuit) for circuit in circuits
             for engine in ("bitslice", "qmdd")]
    expected = _deterministic(run_tasks(tasks, shots=8, seed=5))
    with serve_background(workers=1, queue_depth=8) as background:
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, seed=1)
        with Client(background.address, retry=policy) as client:
            plan = FaultPlan([FaultRule(FAULT_CLIENT_RECV, on_hit=2,
                                        exception=ConnectionResetError)],
                             seed=0)
            with active(plan):
                results = client.run_tasks(tasks, shots=8, seed=5)
            assert plan.fires() == {FAULT_CLIENT_RECV: 1}
            assert _deterministic(results) == expected


def test_queue_full_storm_drains_through_retry():
    """Six clients flood a one-worker, depth-2 queue simultaneously; the
    ``queue_full`` rejects classify as transient and every client's run
    eventually lands, byte-identical to local execution."""
    expected = repro.run(MODERATE, engine="bitslice").to_dict(timings=False)
    counters = PerfCounters()
    with serve_background(workers=1, queue_depth=2) as background:
        results = [None] * 6
        errors = []
        barrier = threading.Barrier(6)

        def storm(slot):
            policy = RetryPolicy(max_attempts=12, base_delay=0.02,
                                 max_delay=0.5, seed=slot,
                                 counters=counters)
            try:
                with Client(background.address, retry=policy) as client:
                    barrier.wait(timeout=30)
                    results[slot] = client.run(
                        MODERATE, engine="bitslice").to_dict(timings=False)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=storm, args=(slot,))
                   for slot in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "storm client hung"
        assert errors == []
        assert results == [expected] * 6
        # The bound really was hit: at least one client had to back off.
        assert counters.snapshot().get("retry_attempts", 0) >= 1


def test_cancel_race_storm_never_wedges_a_session():
    """Cancel appends in flight, repeatedly: whatever the race outcome
    (cancelled before, during, or after the run), the session lock and the
    pool chain lock come back — a follow-up append succeeds and the
    session closes cleanly."""
    heavy = accuracy_circuit(8, 12)
    with serve_background(workers=2, queue_depth=16) as background:
        with Client(background.address) as client:
            session_id = client.open_session(8, engine="bitslice")
            landed = 0
            for _ in range(4):
                msg_id = client._send(AppendToSession(session_id, heavy))
                accepted = client._wait(msg_id, accept=(JobAccepted,))
                outcome = client.cancel(accepted.job_id)
                assert outcome in ("cancelled", "cancelling", "finished")
                try:
                    client._wait(msg_id, accept=(RunCompleted,))
                    landed += 1
                except ServiceError as exc:
                    assert exc.code == "cancelled"
            follow_up = client.append(session_id,
                                      QuantumCircuit(8, name="after").h(0))
            assert follow_up.status == "ok"
            assert client.close_session(session_id) == landed + 1
            assert client.sessions() == []
            health = client.health()
            assert health["running"] == 0
            assert health["queue_depth"] == 0


def test_session_append_retry_is_exactly_once():
    """The acceptance pin for the session path: the reply to an append is
    lost, the client retries under the same idempotency key, and the delta
    lands exactly once — the cumulative circuit grows by one append and
    the result is byte-identical to the equivalent local run."""
    base = QuantumCircuit(4, name="warm").h(0).cx(0, 1)
    delta = QuantumCircuit(4, name="delta").cx(1, 2).cx(2, 3)
    expected = repro.run(base.copy(name="delta").cx(1, 2).cx(2, 3),
                         engine="bitslice").to_dict(timings=False)
    with serve_background(workers=1, queue_depth=8) as background:
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, seed=2)
        with Client(background.address, retry=policy) as client:
            session_id = client.open_session(4, engine="bitslice")
            assert client.append(session_id, base).status == "ok"
            plan = FaultPlan([FaultRule(FAULT_CLIENT_RECV, on_hit=2,
                                        exception=ConnectionResetError)],
                             seed=0)
            with active(plan):
                second = client.append(session_id, delta)
            assert plan.fires() == {FAULT_CLIENT_RECV: 1}
            assert second.to_dict(timings=False) == expected
            row = next(r for r in client.sessions()
                       if r["session_id"] == session_id)
            # Exactly once: base (2 gates) + delta (2 gates), regardless of
            # whether the retry replayed the committed append or re-ran a
            # cancelled one.
            assert row["gates"] == 4
            assert client.close_session(session_id) == 2


def test_session_replay_keys_are_bounded():
    from repro.service.sessions import REPLAY_KEYS_CAP, ServiceSession

    session = ServiceSession("s1", 2, "bitslice")
    assert session.replay(None) is None
    for index in range(REPLAY_KEYS_CAP + 10):
        session.remember(f"k{index}", index)
    assert session.replay("k0") is None  # evicted
    newest = f"k{REPLAY_KEYS_CAP + 9}"
    assert session.replay(newest) == REPLAY_KEYS_CAP + 9
    session.remember(None, "ignored")  # keyless appends are not recorded


def test_server_death_surfaces_as_connection_lost():
    """A vanished server is always ``ServiceError(code="connection_lost")``
    — never a bare ConnectionResetError / BrokenPipeError."""
    background = serve_background(workers=1, queue_depth=4)
    client = Client(background.address)
    try:
        assert client.stats()["queue_depth"] == 0
        background.stop()
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.code == "connection_lost"
    finally:
        client.close()
        background.stop()


def test_async_client_retries_dropped_reply_byte_identically():
    import asyncio

    expected = repro.run(QUICK, engine="bitslice", shots=4,
                         seed=9).to_dict(timings=False)

    async def scenario(address):
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, seed=4)
        client = await AsyncClient.connect(address, retry=policy)
        try:
            health = await client.health()
            assert health["state"] == "ok"
            plan = FaultPlan([FaultRule(FAULT_CLIENT_RECV, on_hit=2,
                                        exception=ConnectionResetError)],
                             seed=0)
            with active(plan):
                result = await client.run(QUICK, engine="bitslice",
                                          shots=4, seed=9)
            assert plan.fires() == {FAULT_CLIENT_RECV: 1}
            assert result.to_dict(timings=False) == expected
        finally:
            await client.close()

    with serve_background(workers=1, queue_depth=8) as background:
        asyncio.run(scenario(background.address))

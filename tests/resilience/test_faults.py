"""Fault-injection registry: seeded schedules must replay exactly.

The whole value of the chaos suite rests on these invariants — a fault
plan is a pure function of ``(rules, seed)``, every run of a test injects
the same faults at the same hits, and an uninstalled registry costs (and
changes) nothing.
"""

from __future__ import annotations

import pytest

import repro
from repro import QuantumCircuit
from repro.perf.counters import PerfCounters
from repro.resilience.faults import (
    FAULT_LIMITS_CHECK,
    FAULT_POINTS,
    FAULT_WORKER_JOB,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active,
    current_plan,
    maybe_fire,
    uninstall,
)

ITERATIONS = 100


def _schedule(plan: FaultPlan, point: str, hits: int = ITERATIONS):
    """The boolean fire pattern of ``point`` over ``hits`` sequential hits."""
    pattern = []
    for _ in range(hits):
        try:
            maybe_fire(point)
        except BaseException:  # noqa: BLE001 - the pattern is the point
            pattern.append(True)
        else:
            pattern.append(False)
    return pattern


def test_every_point_is_inert_without_a_plan():
    uninstall()
    assert current_plan() is None
    for point in FAULT_POINTS:
        maybe_fire(point)  # must not raise


def test_nth_hit_rule_fires_exactly_once():
    plan = FaultPlan([FaultRule(FAULT_WORKER_JOB, on_hit=3)])
    with active(plan):
        pattern = _schedule(plan, FAULT_WORKER_JOB, hits=10)
    assert pattern == [False, False, True] + [False] * 7
    assert plan.fires() == {FAULT_WORKER_JOB: 1}
    assert plan.hit_counts() == {FAULT_WORKER_JOB: 10}


def test_repeat_rule_fires_from_the_ordinal_onwards():
    plan = FaultPlan([FaultRule(FAULT_WORKER_JOB, on_hit=4, repeat=True,
                                times=None)])
    with active(plan):
        pattern = _schedule(plan, FAULT_WORKER_JOB, hits=8)
    assert pattern == [False] * 3 + [True] * 5


def test_probability_schedule_replays_identically_over_100_iterations():
    def run_schedule(seed):
        plan = FaultPlan([FaultRule(FAULT_WORKER_JOB, probability=0.3,
                                    times=None)], seed=seed)
        with active(plan):
            return _schedule(plan, FAULT_WORKER_JOB)

    first = run_schedule(seed=7)
    second = run_schedule(seed=7)
    assert first == second
    assert 0 < sum(first) < ITERATIONS
    assert run_schedule(seed=8) != first


def test_points_draw_from_independent_seeded_streams():
    """Arming a rule for one point must not perturb another point's
    schedule — each point derives its RNG from ``(seed, point)``."""
    solo = FaultPlan([FaultRule(FAULT_WORKER_JOB, probability=0.5,
                                times=None)], seed=11)
    with active(solo):
        alone = _schedule(solo, FAULT_WORKER_JOB)
    both = FaultPlan([FaultRule(FAULT_WORKER_JOB, probability=0.5,
                                times=None),
                      FaultRule(FAULT_LIMITS_CHECK, probability=0.5,
                                times=None)], seed=11)
    with active(both):
        # Interleave hits on the other point between every hit.
        pattern = []
        for _ in range(ITERATIONS):
            _schedule(both, FAULT_LIMITS_CHECK, hits=1)
            pattern.extend(_schedule(both, FAULT_WORKER_JOB, hits=1))
    assert pattern == alone


def test_rule_validation():
    with pytest.raises(ValueError):
        FaultRule(FAULT_WORKER_JOB)  # neither trigger
    with pytest.raises(ValueError):
        FaultRule(FAULT_WORKER_JOB, on_hit=1, probability=0.5)  # both
    with pytest.raises(ValueError):
        FaultRule(FAULT_WORKER_JOB, on_hit=0)  # 1-based ordinal
    with pytest.raises(ValueError):
        FaultRule(FAULT_WORKER_JOB, probability=1.5)


def test_custom_exception_factory_and_counters():
    counters = PerfCounters()
    plan = FaultPlan([FaultRule(FAULT_WORKER_JOB, on_hit=1,
                                exception=ConnectionResetError)],
                     counters=counters)
    with active(plan):
        with pytest.raises(ConnectionResetError):
            maybe_fire(FAULT_WORKER_JOB)
    snapshot = counters.snapshot()
    assert snapshot["fault_fires_total"] == 1
    assert snapshot[f"fault_fires_{FAULT_WORKER_JOB}"] == 1


def test_active_context_disarms_even_on_error():
    plan = FaultPlan([FaultRule(FAULT_WORKER_JOB, on_hit=1)])
    with pytest.raises(InjectedFault):
        with active(plan):
            assert current_plan() is plan
            maybe_fire(FAULT_WORKER_JOB)
    assert current_plan() is None
    maybe_fire(FAULT_WORKER_JOB)  # inert again


def test_limits_check_is_instrumented_mid_circuit():
    """An armed ``limits.check`` rule crashes a simulation between gates,
    and the crash surfaces raw — never absorbed into a benign status."""
    circuit = QuantumCircuit(3, name="chaos").h(0).cx(0, 1).cx(1, 2)
    plan = FaultPlan([FaultRule(FAULT_LIMITS_CHECK, on_hit=2)])
    with active(plan):
        with pytest.raises(InjectedFault):
            repro.run(circuit, engine="bitslice")
    assert plan.fires() == {FAULT_LIMITS_CHECK: 1}
    # Disarmed, the identical run completes.
    assert repro.run(circuit, engine="bitslice").status == "ok"

"""Chaos and resilience suite: seeded fault schedules, retry/backoff,
crash-safe journals and graceful degradation."""

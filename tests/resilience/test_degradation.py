"""Graceful degradation: crash isolation, drain, SIGTERM, socket hygiene."""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro import Client, QuantumCircuit, ServiceError
from repro.harness.experiments import accuracy_circuit
from repro.resilience.faults import (
    FAULT_WORKER_LOOP,
    FaultPlan,
    FaultRule,
    active,
)
from repro.resilience.retry import RetryPolicy, connect_with_retry
from repro.service import serve_background

QUICK = QuantumCircuit(2, name="quick").h(0).cx(0, 1)


def test_worker_survives_injected_machinery_crash_and_keeps_serving():
    """The regression pin: a crash in the worker loop *outside* the job's
    own try block fails the claimed job but never kills the thread — the
    single worker keeps serving afterwards."""
    expected = repro.run(QUICK, engine="bitslice").to_dict(timings=False)
    with serve_background(workers=1, queue_depth=8) as background:
        with Client(background.address) as client:
            plan = FaultPlan([FaultRule(FAULT_WORKER_LOOP, on_hit=1)],
                             seed=0)
            with active(plan):
                with pytest.raises(ServiceError) as excinfo:
                    client.run(QUICK, engine="bitslice")
            assert excinfo.value.code == "internal"
            assert plan.fires() == {FAULT_WORKER_LOOP: 1}
            health = client.health()
            assert health["workers_alive"] == health["workers"] == 1
            result = client.run(QUICK, engine="bitslice")
            assert result.to_dict(timings=False) == expected
            counters = client.stats()["counters"]
            assert counters.get("service_worker_crashes", 0) == 1


def test_health_verb_reports_the_degradation_surface():
    with serve_background(workers=2, queue_depth=5) as background:
        with Client(background.address) as client:
            health = client.health()
            assert health["state"] == "ok"
            assert health["queue_depth"] == 0
            assert health["queue_capacity"] == 5
            assert health["running"] == 0
            assert health["workers"] == health["workers_alive"] == 2
            assert health["sessions"] == 0
            assert health["uptime_seconds"] > 0


def test_drain_finishes_in_flight_work_and_rejects_new_submits():
    """SIGTERM semantics, in process: drain stops accepting, lets the
    running job finish under the grace deadline, and reports completion."""
    with serve_background(workers=1, queue_depth=8) as background:
        admin = Client(background.address)
        try:
            release = threading.Event()
            started = threading.Event()

            def slow_job(cancel_event):
                started.set()
                assert release.wait(timeout=60)
                return "landed"

            job = background.server.scheduler.submit(slow_job,
                                                     request_kind="test")
            assert started.wait(timeout=30)

            drained = []
            drainer = threading.Thread(
                target=lambda: drained.append(
                    background.drain(grace_seconds=60)))
            drainer.start()
            deadline = time.time() + 30
            while not background.server.scheduler.draining:
                assert time.time() < deadline, "drain never began"
                time.sleep(0.01)
            # The pre-drain connection survives the closed listener; new
            # submissions get the structured drain reject...
            with pytest.raises(ServiceError) as excinfo:
                admin.run(QUICK, engine="bitslice")
            assert excinfo.value.code == "draining"
            # ...while health keeps answering, now reporting the state.
            assert admin.health()["state"] == "draining"
            release.set()
            drainer.join(timeout=90)
            assert not drainer.is_alive()
            assert drained == [True], "drain missed the in-flight job"
            assert job.future.result(timeout=10) == "landed"
            counters = background.server.counters.snapshot()
            assert counters.get("drain_begun", 0) == 1
            assert counters.get("drain_rejects", 0) >= 1
            assert counters.get("drain_deadline_exceeded", 0) == 0
        finally:
            admin.close()


def test_drain_deadline_gives_up_without_hanging():
    with serve_background(workers=1, queue_depth=8) as background:
        release = threading.Event()
        started = threading.Event()

        def stuck_job(cancel_event):
            # Overruns the grace window, but honours its cancel token at
            # the next poll — like a real job at a gate boundary.
            started.set()
            cancel_event.wait(timeout=60)
            release.wait(timeout=1)
            return "late"

        background.server.scheduler.submit(stuck_job, request_kind="test")
        assert started.wait(timeout=30)
        completed = background.drain(grace_seconds=0.2)
        assert completed is False
        counters = background.server.counters.snapshot()
        assert counters.get("drain_deadline_exceeded", 0) == 1
        release.set()


def test_sigterm_drains_in_flight_job_and_removes_unix_socket(tmp_path):
    """End to end: a real ``repro-serve`` process receives SIGTERM while a
    job is in flight — the job completes, the process exits 0, and the
    unix socket is gone."""
    sock_path = str(tmp_path / "serve.sock")
    src = os.path.join(os.path.dirname(repro.__file__), os.pardir)
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.abspath(src)
                         + os.pathsep + env.get("PYTHONPATH", ""))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server", "--unix", sock_path,
         "--workers", "1", "--drain-grace", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        # Skip interpreter noise (e.g. runpy warnings) before the banner.
        for _ in range(10):
            banner = proc.stdout.readline()
            if "listening" in banner:
                break
        else:
            pytest.fail(f"repro-serve never reported listening: {banner!r}")
        client = connect_with_retry(
            lambda: Client(f"unix:{sock_path}", timeout=120),
            RetryPolicy(max_attempts=10, base_delay=0.05))
        try:
            # ~0.7 s bit-sliced: reliably still in flight when the signal
            # lands a few milliseconds after submission.
            in_flight = accuracy_circuit(7, 10)
            results = []
            runner = threading.Thread(
                target=lambda: results.append(
                    client.run(in_flight, engine="bitslice")))
            runner.start()
            time.sleep(0.15)
            proc.send_signal(signal.SIGTERM)
            runner.join(timeout=120)
            assert not runner.is_alive(), "in-flight run never completed"
            assert len(results) == 1 and results[0].status == "ok"
        finally:
            client.close()
        assert proc.wait(timeout=60) == 0
        assert not os.path.exists(sock_path), "stale unix socket left behind"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def test_stale_unix_socket_is_replaced_on_start_and_removed_on_stop(tmp_path):
    path = str(tmp_path / "stale.sock")
    # A previous process died without unlinking: the file exists but
    # nobody is listening.
    leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    leftover.bind(path)
    leftover.close()
    assert os.path.exists(path)
    with serve_background(unix_path=path) as background:
        assert background.address == path
        with Client(f"unix:{path}") as client:
            assert client.run(QUICK, engine="bitslice").status == "ok"
    assert not os.path.exists(path)


def test_harness_server_flag_retries_until_the_server_is_up(tmp_path):
    """The ``--server`` satellite: the harness connects with backoff, so a
    server that starts a beat later is tolerated."""
    from repro.harness.__main__ import main as harness_main

    sock_path = str(tmp_path / "late.sock")
    background_holder = []

    def start_late():
        time.sleep(0.4)
        background_holder.append(serve_background(unix_path=sock_path))

    starter = threading.Thread(target=start_late)
    starter.start()
    out_path = str(tmp_path / "tables.txt")
    try:
        rc = harness_main(["accuracy", "--quick", "--server",
                           f"unix:{sock_path}", "--out", out_path])
        assert rc == 0
        assert os.path.getsize(out_path) > 0
    finally:
        starter.join(timeout=30)
        for background in background_holder:
            background.stop()

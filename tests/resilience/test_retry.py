"""Retry policy: seeded backoff schedules, classification, give-up."""

from __future__ import annotations

import asyncio

import pytest

from repro.perf.counters import PerfCounters
from repro.resilience.retry import (
    RETRYABLE_CODES,
    RetryGaveUp,
    RetryPolicy,
    connect_with_retry,
    is_retryable,
)
from repro.service.client import ServiceError


def _policy(**kwargs):
    kwargs.setdefault("sleep", lambda _: None)
    return RetryPolicy(**kwargs)


def test_delay_schedule_is_seeded_capped_and_decorrelated():
    policy = RetryPolicy(max_attempts=6, base_delay=0.05, max_delay=0.4,
                         seed=3)
    first = list(policy.delays())
    assert first == list(RetryPolicy(max_attempts=6, base_delay=0.05,
                                     max_delay=0.4, seed=3).delays())
    assert len(first) == 5
    assert first[0] == 0.05
    assert all(0.05 <= delay <= 0.4 for delay in first)
    assert first != list(RetryPolicy(max_attempts=6, base_delay=0.05,
                                     max_delay=0.4, seed=4).delays())


def test_transient_failures_retry_until_success():
    slept = []
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise ConnectionResetError("boom")
        return "ok"

    policy = RetryPolicy(max_attempts=5, base_delay=0.01, seed=1,
                         sleep=slept.append)
    assert policy.call(flaky) == "ok"
    assert attempts["n"] == 3
    assert len(slept) == 2


def test_fatal_errors_are_not_retried():
    attempts = {"n": 0}

    def bad():
        attempts["n"] += 1
        raise ValueError("semantic, not transient")

    with pytest.raises(ValueError):
        _policy(max_attempts=5).call(bad)
    assert attempts["n"] == 1


def test_give_up_chains_the_last_error():
    def always():
        raise ConnectionResetError("still down")

    with pytest.raises(RetryGaveUp) as excinfo:
        _policy(max_attempts=3, base_delay=0.0).call(always)
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.last_error, ConnectionResetError)
    assert excinfo.value.__cause__ is excinfo.value.last_error


def test_structured_codes_classify():
    for code in RETRYABLE_CODES:
        assert is_retryable(ServiceError(code, "x"))
    for code in ("bad_request", "unknown_session", "internal", "cancelled",
                 "too_many_sessions", "version_mismatch"):
        assert not is_retryable(ServiceError(code, "x"))
    assert is_retryable(ConnectionResetError())
    assert is_retryable(BrokenPipeError())
    assert not is_retryable(ValueError())


def test_counters_record_attempts_sleep_and_giveups():
    counters = PerfCounters()
    policy = _policy(max_attempts=3, base_delay=0.5, counters=counters)
    with pytest.raises(RetryGaveUp):
        policy.call(lambda: (_ for _ in ()).throw(ConnectionResetError()))
    snapshot = counters.snapshot()
    assert snapshot["retry_attempts"] == 2
    assert snapshot["retry_sleep_seconds"] > 0
    assert snapshot["retry_giveups"] == 1


def test_on_retry_observer_sees_attempt_error_delay():
    seen = []

    def flaky():
        if len(seen) < 1:
            raise ServiceError("queue_full", "busy")
        return 42

    policy = _policy(max_attempts=3, base_delay=0.01, seed=0)
    result = policy.call(flaky,
                         on_retry=lambda a, e, d: seen.append((a, e.code, d)))
    assert result == 42
    assert seen == [(1, "queue_full", 0.01)]


def test_async_call_mirrors_sync_semantics():
    async def scenario():
        attempts = {"n": 0}

        async def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ServiceError("connection_lost", "dropped")
            return "async-ok"

        policy = RetryPolicy(max_attempts=4, base_delay=0.001, seed=2)
        assert await policy.async_call(flaky) == "async-ok"
        assert attempts["n"] == 3

        async def fatal():
            raise ServiceError("bad_request", "nope")

        with pytest.raises(ServiceError):
            await policy.async_call(fatal)

        async def always():
            raise ServiceError("queue_full", "forever")

        with pytest.raises(RetryGaveUp):
            await policy.async_call(always)

    asyncio.run(scenario())


def test_connect_with_retry_tolerates_a_slow_start():
    attempts = {"n": 0}

    def factory():
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise ConnectionRefusedError("not listening yet")
        return "connection"

    policy = _policy(max_attempts=5, base_delay=0.0)
    assert connect_with_retry(factory, policy) == "connection"
    assert attempts["n"] == 3

"""Lockstep pins between the CI pipeline and the repository it gates.

CI definitions rot silently: a benchmark family added to
``benchmarks/baseline.json`` but not to the smoke step is a gate that
never fires, and a setup step without pip caching quietly re-downloads
the toolchain on every run.  These tests parse the committed workflow
files (plain text — no YAML dependency) and fail when the pipeline and
the repository drift apart.
"""

import json
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CI_YML = REPO_ROOT / ".github" / "workflows" / "ci.yml"
NIGHTLY_YML = REPO_ROOT / ".github" / "workflows" / "nightly.yml"
BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"
BENCH_DIR = REPO_ROOT / "benchmarks"
PYPROJECT = REPO_ROOT / "pyproject.toml"


def ci_text():
    return CI_YML.read_text(encoding="utf-8")


def nightly_text():
    return NIGHTLY_YML.read_text(encoding="utf-8")


def smoke_benchmark_files(text):
    """The ``benchmarks/bench_*.py`` paths the smoke-benchmark step runs."""
    return set(re.findall(r"benchmarks/(bench_\w+\.py)", text))


def benchmark_file_of(test_name):
    """The benchmarks/ file defining ``test_name`` (parametrised names have
    their ``[param]`` suffix stripped first)."""
    bare = test_name.split("[", 1)[0]
    pattern = re.compile(rf"^def {re.escape(bare)}\(", re.MULTILINE)
    owners = [path.name for path in sorted(BENCH_DIR.glob("bench_*.py"))
              if pattern.search(path.read_text(encoding="utf-8"))]
    assert owners, f"no benchmarks/bench_*.py defines {bare}"
    assert len(owners) == 1, f"{bare} defined in several files: {owners}"
    return owners[0]


class TestSmokeBenchmarkLockstep:
    def test_baseline_families_match_ci_smoke_list(self):
        """Every family gated by baseline.json is in CI's smoke step and
        vice versa — a baseline entry whose file CI never runs is a dead
        gate, and a smoke file without baseline entries is ungated."""
        baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
        baseline_files = {benchmark_file_of(name)
                          for name in baseline["benchmarks"]}
        ci_files = smoke_benchmark_files(ci_text())
        assert ci_files == baseline_files, (
            f"ci.yml smoke list {sorted(ci_files)} != baseline families "
            f"{sorted(baseline_files)}; rerun the smoke set with "
            f"scripts/check_bench_regression.py --update or fix ci.yml")

    def test_cache_benchmarks_are_smoke_gated(self):
        assert "bench_cache.py" in smoke_benchmark_files(ci_text())

    def test_service_benchmarks_are_smoke_gated(self):
        assert "bench_service.py" in smoke_benchmark_files(ci_text())

    def test_snapshot_benchmarks_are_smoke_gated(self):
        assert "bench_snapshot.py" in smoke_benchmark_files(ci_text())

    def test_smoke_files_exist(self):
        for name in smoke_benchmark_files(ci_text()):
            assert (BENCH_DIR / name).is_file(), f"{name} missing"


class TestPipCaching:
    @staticmethod
    def assert_all_setup_python_steps_cache(text, source):
        """Every actions/setup-python step must enable pip caching (and
        key it on pyproject.toml, the only dependency manifest here)."""
        blocks = re.split(r"(?=- uses: actions/setup-python)", text)
        steps = [block for block in blocks
                 if block.startswith("- uses: actions/setup-python")]
        assert steps, f"no setup-python steps found in {source}"
        for step in steps:
            header = step.split("- name:", 1)[0]
            assert "cache: pip" in header, (
                f"a setup-python step in {source} lacks 'cache: pip'")
            assert "cache-dependency-path: pyproject.toml" in header, (
                f"a setup-python step in {source} lacks the dependency path")

    def test_ci_jobs_cache_pip(self):
        self.assert_all_setup_python_steps_cache(ci_text(), "ci.yml")

    def test_nightly_jobs_cache_pip(self):
        self.assert_all_setup_python_steps_cache(nightly_text(),
                                                 "nightly.yml")


class TestTriggers:
    def test_ci_supports_manual_dispatch(self):
        assert "workflow_dispatch:" in ci_text()

    def test_nightly_is_scheduled_and_dispatchable(self):
        text = nightly_text()
        assert "schedule:" in text
        assert re.search(r"cron:\s*\"[^\"]+\"", text)
        assert "workflow_dispatch:" in text


class TestNightlyFamilies:
    def test_nightly_runs_the_full_families(self):
        text = nightly_text()
        for family in ("bench_table4_revlib.py", "bench_table5_algorithms.py",
                       "bench_ablations.py", "bench_accuracy.py"):
            assert family in text, f"nightly.yml misses {family}"
            assert (BENCH_DIR / family).is_file()

    def test_nightly_uploads_json_reports(self):
        text = nightly_text()
        assert "--benchmark-json=" in text
        assert "actions/upload-artifact" in text


class TestCoverageGate:
    def test_ci_has_a_coverage_job(self):
        text = ci_text()
        assert re.search(r"^  coverage:", text, re.MULTILINE)
        assert ".[test,cov]" in text
        assert "--cov=repro" in text

    def test_minimum_percentage_is_committed(self):
        pyproject = PYPROJECT.read_text(encoding="utf-8")
        assert "[tool.coverage.report]" in pyproject
        match = re.search(r"^fail_under\s*=\s*(\d+)", pyproject, re.MULTILINE)
        assert match, "pyproject.toml commits no coverage fail_under"
        assert int(match.group(1)) >= 75, "coverage floor eroded below 75%"

    def test_cov_extra_is_declared(self):
        pyproject = PYPROJECT.read_text(encoding="utf-8")
        assert re.search(r"^cov\s*=\s*\[", pyproject, re.MULTILINE)


def job_sections(text, source):
    """Split a workflow's ``jobs:`` mapping into one text block per job."""
    assert "\njobs:\n" in text, f"{source} has no jobs mapping"
    block = text.split("\njobs:\n", 1)[1]
    jobs = {}
    for section in re.split(r"^(?=  [\w-]+:\s*$)", block, flags=re.MULTILINE):
        lines = section.splitlines()
        match = re.match(r"^  ([\w-]+):\s*$", lines[0]) if lines else None
        if match:
            jobs[match.group(1)] = section
    assert jobs, f"no jobs parsed from {source}"
    return jobs


class TestChaosSuiteJob:
    def test_chaos_suite_is_a_separate_ci_job(self):
        """The seeded fault schedules run as their own job, so a
        resilience regression is attributable at a glance instead of
        drowning in the tier-1 matrix."""
        jobs = job_sections(ci_text(), "ci.yml")
        assert "chaos" in jobs, "ci.yml lost the chaos job"
        assert "tests/resilience" in jobs["chaos"]
        assert (REPO_ROOT / "tests" / "resilience").is_dir()

    def test_sigkill_resume_scenarios_are_pinned(self):
        """The checkpointing acceptance gates — real subprocesses killed
        with SIGKILL that must resume byte-identically — run as their own
        named step inside the chaos job, so a crash-safety regression is
        attributable at a glance."""
        jobs = job_sections(ci_text(), "ci.yml")
        assert "tests/resilience/test_sigkill_resume.py" in jobs["chaos"]
        assert (REPO_ROOT / "tests" / "resilience"
                / "test_sigkill_resume.py").is_file()

    def test_chaos_suite_stays_in_tier1_too(self):
        """The separate job isolates attribution; it must not become an
        excuse to drop the chaos tests from the default pytest run."""
        conftest = (REPO_ROOT / "tests" / "conftest.py")
        if conftest.exists():
            text = conftest.read_text(encoding="utf-8")
            assert "resilience" not in text, (
                "tests/conftest.py special-cases tests/resilience — the "
                "chaos suite must stay in the default collection")


class TestNoNumbaJob:
    def test_fallback_job_exists_and_runs_the_substrate_suites(self):
        """The compiled substrate degrades to the array backend when numba
        is absent; a dedicated job runs the differential and golden-shape
        suites in exactly that environment so the fallback path cannot rot
        unexercised."""
        jobs = job_sections(ci_text(), "ci.yml")
        assert "no-numba" in jobs, "ci.yml lost the no-numba fallback job"
        section = jobs["no-numba"]
        assert "tests/substrate" in section
        assert "tests/bdd" in section
        assert (REPO_ROOT / "tests" / "substrate").is_dir()

    def test_fallback_job_asserts_numba_absence(self):
        """Without the absence assertion the job silently tests the normal
        path the moment numba becomes a transitive dependency."""
        section = job_sections(ci_text(), "ci.yml")["no-numba"]
        assert 'find_spec("numba") is None' in section

    def test_fallback_job_pins_the_degradation_rule(self):
        section = job_sections(ci_text(), "ci.yml")["no-numba"]
        assert 'resolve_substrate("compiled") == "array"' in section
        assert 'resolve_substrate("auto") == "dict"' in section

    def test_compiled_extra_is_declared_but_not_default(self):
        """numba lives in an opt-in extra: the base install (and therefore
        the tier-1 matrix) must not pull it in."""
        pyproject = PYPROJECT.read_text(encoding="utf-8")
        assert re.search(r"^compiled\s*=\s*\[", pyproject, re.MULTILINE)
        dependencies = pyproject.split("[project.optional-dependencies]")[0]
        assert "numba" not in dependencies


class TestJobTimeouts:
    @staticmethod
    def assert_every_job_times_out(text, source):
        """A hung runner bills until the 6-hour GitHub default kills it;
        every job carries an explicit timeout-minutes instead."""
        for name, section in job_sections(text, source).items():
            assert "timeout-minutes:" in section, (
                f"job {name!r} in {source} has no timeout-minutes")

    def test_ci_jobs_have_timeouts(self):
        self.assert_every_job_times_out(ci_text(), "ci.yml")

    def test_nightly_jobs_have_timeouts(self):
        self.assert_every_job_times_out(nightly_text(), "nightly.yml")

"""``repro.run(..., checkpoint_every=...)``: crash, resume, byte-identity.

The front-door face of the checkpointing tentpole: a checkpointed run
that dies mid-circuit resumes from its last snapshot and produces a
``to_dict(timings=False)`` **byte-identical** to an uninterrupted run —
fixed-seed sampled counts included; a corrupt checkpoint is skipped (the
run goes cold), never fatal; sweeps thread one checkpoint per journal
task key and resume prefers restore over re-execution.
"""

from __future__ import annotations

import json
import os

import pytest

import repro
from repro import JobCancelledError, QuantumCircuit
from repro.engines.frontdoor import (
    checkpoint_file,
    derive_task_seed,
    run_sweep,
    run_tasks,
)
from repro.engines.limits import ResourceLimits
from repro.engines.registry import create_engine, engine_capabilities
from repro.exceptions import UnsupportedGateError
from repro.resilience.journal import SweepJournal, task_key
from repro.snapshot import snapshot_info
from tests.conftest import universal_mix

#: Static, sampled: the byte-identity claim must cover seeded counts.
CIRCUIT = universal_mix(4, seed=21, measure=True)


class FireAfter:
    """A cancel token that trips after N polls — a deterministic 'crash'
    at a gate boundary (the limit enforcer polls once per instruction)."""

    def __init__(self, after: int):
        self.after = after
        self.calls = 0

    def is_set(self) -> bool:
        self.calls += 1
        return self.calls > self.after


def det(result) -> str:
    return json.dumps(result.to_dict(timings=False), sort_keys=True)


def ckpt_files(directory):
    return sorted(p for p in os.listdir(directory) if p.endswith(".ckpt"))


def test_uninterrupted_checkpointed_run_is_byte_identical(tmp_path):
    cold = repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5)
    hot = repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5,
                    checkpoint_every=1, checkpoint_dir=tmp_path)
    assert det(hot) == det(cold)
    assert hot.extra["checkpoints_written"] >= 1
    assert "resumed_from_checkpoint" not in hot.extra
    # The run reached ok: its checkpoint is a stale prefix, removed.
    assert ckpt_files(tmp_path) == []


def test_crashed_run_resumes_byte_identically(tmp_path):
    baseline = det(repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5))
    with pytest.raises(JobCancelledError):
        repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5,
                  cancel=FireAfter(6), checkpoint_every=1,
                  checkpoint_dir=tmp_path)
    files = ckpt_files(tmp_path)
    assert len(files) == 1, "the crash must leave exactly one checkpoint"
    info = snapshot_info(tmp_path / files[0])
    assert info["kind"] == "simulator"
    resumed = repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5,
                        checkpoint_every=1, checkpoint_dir=tmp_path)
    assert resumed.extra["resumed_from_checkpoint"] >= 1
    assert det(resumed) == baseline
    assert ckpt_files(tmp_path) == []  # discarded after the ok finish


def test_corrupt_checkpoint_is_skipped_never_fatal(tmp_path):
    baseline = det(repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5))
    with pytest.raises(JobCancelledError):
        repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5,
                  cancel=FireAfter(6), checkpoint_every=1,
                  checkpoint_dir=tmp_path)
    victim = tmp_path / ckpt_files(tmp_path)[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0x40
    victim.write_bytes(bytes(blob))
    recovered = repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5,
                          checkpoint_every=1, checkpoint_dir=tmp_path)
    assert recovered.extra["checkpoint_corrupt_skipped"] == 1
    assert "resumed_from_checkpoint" not in recovered.extra
    assert det(recovered) == baseline


def test_stale_checkpoint_of_another_circuit_is_ignored(tmp_path):
    other = universal_mix(4, seed=99, measure=True)
    key = "shared-key"
    with pytest.raises(JobCancelledError):
        repro.run(other, engine="bitslice", cancel=FireAfter(6),
                  checkpoint_every=1, checkpoint_dir=tmp_path,
                  checkpoint_key=key)
    assert ckpt_files(tmp_path)
    baseline = det(repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5))
    result = repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5,
                       checkpoint_every=1, checkpoint_dir=tmp_path,
                       checkpoint_key=key)
    assert "resumed_from_checkpoint" not in result.extra
    assert det(result) == baseline


def test_checkpoint_kept_on_timeout_enables_deeper_retry(tmp_path):
    with pytest.raises(JobCancelledError):
        repro.run(CIRCUIT, engine="bitslice", cancel=FireAfter(8),
                  checkpoint_every=1, checkpoint_dir=tmp_path)
    timed_out = repro.run(CIRCUIT, engine="bitslice",
                          limits=ResourceLimits(max_seconds=0.0),
                          checkpoint_every=1, checkpoint_dir=tmp_path)
    assert timed_out.status == "TO"
    # TO keeps the checkpoint: a retry under a real budget resumes.
    assert len(ckpt_files(tmp_path)) == 1
    retried = repro.run(CIRCUIT, engine="bitslice", shots=64, seed=5,
                        checkpoint_every=1, checkpoint_dir=tmp_path)
    assert retried.status == "ok"
    assert retried.extra["resumed_from_checkpoint"] >= 1
    assert ckpt_files(tmp_path) == []


def test_interval_spec_validation(tmp_path):
    for bad in (0, -3, True, False, 0.0, -1.5, (None, None), (0, None),
                (None, 0.0), "hourly", (1, 2, 3)):
        with pytest.raises(ValueError):
            repro.run(CIRCUIT, engine="bitslice", checkpoint_every=bad,
                      checkpoint_dir=tmp_path)
    with pytest.raises(ValueError):
        repro.run(CIRCUIT, engine="bitslice", checkpoint_every=1)
    # Valid forms all run (and clean up after the ok).
    for good in (5, 0.001, (3, None), (None, 0.001), (3, 0.001)):
        result = repro.run(CIRCUIT, engine="bitslice", checkpoint_every=good,
                           checkpoint_dir=tmp_path)
        assert result.status == "ok"
    assert ckpt_files(tmp_path) == []


def test_engines_without_the_capability_degrade_gracefully(tmp_path):
    assert engine_capabilities("bitslice").supports_snapshots
    for engine in ("qmdd", "statevector"):
        assert not engine_capabilities(engine).supports_snapshots
        result = repro.run(CIRCUIT, engine=engine, shots=16, seed=3,
                           checkpoint_every=1, checkpoint_dir=tmp_path)
        assert result.status == "ok"
        assert "checkpoints_written" not in result.extra
    assert ckpt_files(tmp_path) == []


def test_default_engine_snapshot_api_refuses(tmp_path):
    engine = create_engine("qmdd")
    assert engine.export_snapshot(tmp_path / "never.ckpt") is False
    assert not (tmp_path / "never.ckpt").exists()
    with pytest.raises(UnsupportedGateError):
        engine.restore_snapshot(tmp_path / "never.ckpt")


def test_checkpoint_file_is_deterministic_and_sanitised(tmp_path):
    first = checkpoint_file(tmp_path, "task:0|bitslice/abc")
    assert first == checkpoint_file(tmp_path, "task:0|bitslice/abc")
    assert first != checkpoint_file(tmp_path, "task:1|bitslice/abc")
    name = os.path.basename(first)
    assert name.endswith(".ckpt")
    assert "/" not in name and ":" not in name and "|" not in name
    long_key = "x" * 500
    assert len(os.path.basename(checkpoint_file(tmp_path, long_key))) < 120


def test_checkpointed_sweep_resumes_and_cleans_up(tmp_path):
    """The sweep acceptance pin: a killed checkpointed+journalled sweep
    resumes — finished tasks replay from the journal, the interrupted
    task restores its checkpoint — byte-identical to an uninterrupted
    sweep, and success leaves neither checkpoints nor stale pointers."""
    circuits = [universal_mix(4, seed=s, measure=True) for s in (31, 32, 33)]
    tasks = [("bitslice", circuit) for circuit in circuits]
    journal_path = tmp_path / "journal.jsonl"
    ckpt_dir = tmp_path / "ckpts"
    baseline = [det(r) for r in run_tasks(tasks, shots=32, seed=7)]
    # Crash inside task 1: task 0 is journalled, task 1 leaves a
    # checkpoint (universal_mix(4) is 12 gates -> ~13 polls per task).
    with pytest.raises(JobCancelledError):
        run_tasks(tasks, shots=32, seed=7, journal=journal_path,
                  checkpoint_every=1, checkpoint_dir=ckpt_dir,
                  cancel=FireAfter(20))
    journal = SweepJournal(journal_path)
    assert len(journal) == 1
    crashed_key = task_key(1, "bitslice", circuits[1], 32,
                           derive_task_seed(7, 1), None)
    pointer = journal.latest_checkpoint(crashed_key)
    assert pointer == checkpoint_file(ckpt_dir, crashed_key)
    assert os.path.exists(pointer)
    resumed = run_tasks(tasks, shots=32, seed=7, journal=journal_path,
                        checkpoint_every=1, checkpoint_dir=ckpt_dir)
    assert [det(r) for r in resumed] == baseline
    assert resumed[0].extra.get("journal_replayed") == 1
    assert resumed[1].extra["resumed_from_checkpoint"] >= 1
    assert ckpt_files(ckpt_dir) == []
    # A key with a journalled result reports no checkpoint pointer.
    assert SweepJournal(journal_path).latest_checkpoint(crashed_key) is None


def test_checkpointed_sweep_parallel_path(tmp_path):
    circuits = [universal_mix(4, seed=s, measure=True) for s in (41, 42)]
    tasks = [("bitslice", circuit) for circuit in circuits]
    baseline = [det(r) for r in run_tasks(tasks, shots=16, seed=2)]
    results = run_tasks(tasks, shots=16, seed=2, jobs=2,
                        journal=tmp_path / "j.jsonl", checkpoint_every=1,
                        checkpoint_dir=tmp_path / "ckpts")
    assert [det(r) for r in results] == baseline
    assert ckpt_files(tmp_path / "ckpts") == []


def test_run_sweep_threads_checkpoint_arguments(tmp_path):
    circuits = [universal_mix(3, seed=s, measure=False) for s in (51, 52)]
    baseline = run_sweep(circuits, engines=("bitslice",))
    swept = run_sweep(circuits, engines=("bitslice",), checkpoint_every=1,
                      checkpoint_dir=tmp_path)
    assert [det(r) for r in swept] == [det(r) for r in baseline]
    assert ckpt_files(tmp_path) == []


def test_run_tasks_checkpoint_every_requires_dir(tmp_path):
    with pytest.raises(ValueError):
        run_tasks([("bitslice", CIRCUIT)], checkpoint_every=1)


def test_dynamic_circuits_run_uncheckpointed(tmp_path):
    """Mid-circuit measurement makes the trajectory collapse-dependent:
    no checkpoint is written, the run itself is unaffected."""
    dynamic = QuantumCircuit(2, name="dynamic").h(0)
    dynamic.measure_mid(0, 0)
    dynamic.x(1)
    result = repro.run(dynamic, engine="bitslice", shots=8, seed=1,
                       checkpoint_every=1, checkpoint_dir=tmp_path)
    assert result.status == "ok"
    assert "checkpoints_written" not in result.extra
    assert ckpt_files(tmp_path) == []

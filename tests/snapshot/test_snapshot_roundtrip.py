"""Snapshot round-trips: a restored manager is column-for-column identical.

The tentpole guarantee of the checkpointing PR: :func:`repro.snapshot.
load_manager` / :func:`load_simulator` rebuild state whose storage columns,
free-list order, unique-table insertion order, variable order and external
reference table equal the dumped source *exactly* — on every substrate
backend — so a run resumed from a snapshot is indistinguishable from one
that never stopped (PR 9's node-identity contract makes node ids a pure
function of creation order, which the snapshot preserves).
"""

from __future__ import annotations

import os

import pytest

from repro import QuantumCircuit
from repro.bdd import ArrayBddManager, BddManager
from repro.bdd.substrate import resolve_substrate
from repro.core.simulator import BitSliceSimulator
from repro.snapshot import (
    SNAPSHOT_VERSION,
    dump_manager,
    dump_simulator,
    load_manager,
    load_simulator,
    snapshot_info,
)
from tests.conftest import ghz, layered, universal_mix

try:  # the kernel module needs numpy; without numba it runs interpreted
    from repro.bdd._compiled import CompiledBddManager
except ImportError:  # pragma: no cover - numpy-less environments
    CompiledBddManager = None

#: (backend name, manager factory): the same matrix the differential
#: harness proves node-for-node equal (tests/substrate).
BACKENDS = [("dict", BddManager), ("array", ArrayBddManager)]
if CompiledBddManager is not None:
    BACKENDS.append(("compiled", CompiledBddManager))
BACKEND_IDS = [name for name, _ in BACKENDS]


def full_snapshot(manager):
    """Every identity-bearing manager field as plain python values."""
    return {
        "var": list(manager._var),
        "low": list(manager._low),
        "high": list(manager._high),
        "free": list(manager._free),
        "unique": list(manager._unique.values()),
        "var_to_level": list(manager._var_to_level),
        "level_to_var": list(manager._level_to_var),
        "refs": dict(manager._external_refs),
    }


def warm_simulator(factory, circuit):
    """Run ``circuit`` on a fresh manager from ``factory`` and leave the
    store in a lived-in state: dead temporaries collected, so the free
    list and recycled ids are non-trivial."""
    manager = factory(circuit.num_qubits)
    simulator = BitSliceSimulator(circuit.num_qubits, manager=manager)
    simulator.run(circuit)
    # Unreferenced scratch nodes -> a GC sweep -> a non-empty free list
    # (free-list *order* feeds future id assignment, so it must survive
    # the round trip).
    manager.apply_and(
        manager.apply_xor(manager.var_node(0), manager.var_node(1)),
        manager.var_node(manager.num_vars - 1))
    manager.garbage_collect()
    return simulator


def suffix_circuit(circuit, start):
    suffix = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}-tail")
    for gate in circuit.gates[start:]:
        suffix.append(gate)
    return suffix


@pytest.mark.parametrize("name,factory", BACKENDS, ids=BACKEND_IDS)
class TestManagerRoundTrip:
    def test_storage_is_column_for_column_identical(self, name, factory,
                                                    tmp_path):
        simulator = warm_simulator(factory, universal_mix(4, seed=7,
                                                          measure=False))
        manager = simulator.state.manager
        before = full_snapshot(manager)
        assert before["free"], "fixture must exercise the free list"
        path = tmp_path / "manager.snap"
        dump_manager(manager, path)
        restored = load_manager(path)
        assert full_snapshot(restored) == before
        assert restored.num_vars == manager.num_vars
        assert restored.substrate_name == resolve_substrate(name)

    def test_redump_of_restore_is_byte_identical(self, name, factory,
                                                 tmp_path):
        """The strongest round-trip statement: dump(load(dump(m))) is the
        same file, byte for byte (when the backend does not degrade —
        ``compiled`` without numba legitimately re-dumps as ``array``)."""
        if resolve_substrate(name) != name:
            pytest.skip("backend degrades on restore in this environment")
        simulator = warm_simulator(factory, layered(4, layers=3))
        first = tmp_path / "first.snap"
        second = tmp_path / "second.snap"
        dump_manager(simulator.state.manager, first)
        dump_manager(load_manager(first), second)
        assert second.read_bytes() == first.read_bytes()

    def test_counters_and_knobs_survive(self, name, factory, tmp_path):
        manager = factory(3, auto_gc_threshold=123456,
                          cache_size_limit=4096)
        simulator = BitSliceSimulator(3, manager=manager)
        simulator.run(ghz(3))
        path = tmp_path / "manager.snap"
        dump_manager(manager, path)
        restored = load_manager(path)
        assert restored._auto_gc_threshold == 123456
        assert restored._cache_size_limit == 4096
        assert restored._unique_inserts == manager._unique_inserts
        assert restored._peak_live_nodes == manager._peak_live_nodes
        assert restored._op_hits == list(manager._op_hits)
        assert restored._op_misses == list(manager._op_misses)


@pytest.mark.parametrize("name,factory", BACKENDS, ids=BACKEND_IDS)
class TestSimulatorRoundTrip:
    def test_restored_run_continues_identically(self, name, factory,
                                                tmp_path):
        """Dump mid-circuit, restore, run the remaining gates on both: the
        interrupted-and-resumed simulator ends in the *identical* node
        store, amplitudes and distribution as the uninterrupted one."""
        circuit = universal_mix(4, seed=3, measure=False)
        split = circuit.num_gates // 2
        # Run the prefix on a fresh simulator, snapshot it, restore.
        manager = factory(4)
        simulator = BitSliceSimulator(4, manager=manager)
        prefix = QuantumCircuit(4, name="prefix")
        for gate in circuit.gates[:split]:
            prefix.append(gate)
        simulator.run(prefix)
        path = tmp_path / "sim.snap"
        dump_simulator(simulator, path)
        restored, extra = load_simulator(path)
        assert extra == {}
        assert full_snapshot(restored.state.manager) == full_snapshot(
            simulator.state.manager)
        assert restored.gates_applied == simulator.gates_applied
        assert restored.peak_nodes == simulator.peak_nodes
        tail = suffix_circuit(circuit, split)
        simulator.run(tail)
        restored.run(tail)
        assert full_snapshot(restored.state.manager) == full_snapshot(
            simulator.state.manager)
        assert (restored.measurement_distribution()
                == simulator.measurement_distribution())
        for basis in range(2 ** 4):
            assert restored.amplitude(basis) == simulator.amplitude(basis)

    def test_slice_handle_sharing_pattern_survives(self, name, factory,
                                                   tmp_path):
        """Positions of the 4r slice table that share one handle object
        before the dump share one handle object after the restore — the
        refcount accounting depends on it."""
        simulator = warm_simulator(factory, ghz(3))
        path = tmp_path / "sim.snap"
        dump_simulator(simulator, path)
        restored, _ = load_simulator(path)

        def sharing(sim):
            groups = {}
            pattern = []
            for vector in sim.state.slices.values():
                for handle in vector:
                    pattern.append(groups.setdefault(id(handle),
                                                     len(groups)))
            return pattern

        assert sharing(restored) == sharing(simulator)
        assert (restored.state.manager._external_refs
                == simulator.state.manager._external_refs)

    def test_scalars_and_limits_survive(self, name, factory, tmp_path):
        manager = factory(3)
        simulator = BitSliceSimulator(3, manager=manager,
                                      max_seconds=12.5, max_nodes=9999)
        simulator.run(universal_mix(3, seed=11, measure=False))
        path = tmp_path / "sim.snap"
        dump_simulator(simulator, path, extra={"who": "tests", "depth": 9})
        restored, extra = load_simulator(path)
        assert extra == {"who": "tests", "depth": 9}
        assert restored.max_seconds == 12.5
        assert restored.max_nodes == 9999
        assert restored.state.r == simulator.state.r
        assert restored.state.k == simulator.state.k
        assert restored.state.s == simulator.state.s


def test_snapshot_info_probe(tmp_path):
    simulator = warm_simulator(BddManager, ghz(3))
    path = tmp_path / "sim.snap"
    dump_simulator(simulator, path)
    info = snapshot_info(path)
    assert info["kind"] == "simulator"
    assert info["version"] == SNAPSHOT_VERSION
    assert info["bytes"] == os.path.getsize(path)
    for section in ("meta", "var", "low", "high", "unique", "free",
                    "order", "refs", "state", "simulator", "extra"):
        assert section in info["sections"]


def test_atomic_write_replaces_never_tears(tmp_path):
    """An existing snapshot is replaced atomically: no ``.tmp`` residue
    and the destination is always one complete snapshot."""
    simulator = warm_simulator(BddManager, ghz(2))
    path = tmp_path / "sim.snap"
    dump_simulator(simulator, path)
    first = path.read_bytes()
    simulator.run(QuantumCircuit(2, name="more").h(0))
    dump_simulator(simulator, path)
    assert path.read_bytes() != first
    load_simulator(path)  # fully valid after the in-place replace
    assert [p for p in os.listdir(tmp_path) if ".tmp" in p] == []


def test_cross_backend_snapshot_restores_on_writer_backend(tmp_path):
    """A snapshot names its substrate; the loader re-creates that backend
    (modulo the documented compiled->array degradation), and the columns
    are bit-equal across the dict/array divide because the differential
    contract already makes the source stores equal."""
    stores = {}
    for name, factory in BACKENDS:
        simulator = warm_simulator(factory, layered(3, layers=2))
        path = tmp_path / f"{name}.snap"
        dump_simulator(simulator, path)
        restored, _ = load_simulator(path)
        stores[name] = full_snapshot(restored.state.manager)
    reference = stores["dict"]
    for name, store in stores.items():
        assert store == reference, name

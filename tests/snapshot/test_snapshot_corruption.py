"""Satellite 3: corrupt snapshots are *always* detected, never restored.

The adversarial matrix behind the "never garbage restore" guarantee —
torn writes (truncation at and around every structural boundary),
single-bit flips across the whole file, header damage, semantic
inconsistencies smuggled past the CRCs — every one raises
:class:`SnapshotCorruptError` naming the offending section, on every
substrate backend.
"""

from __future__ import annotations

import struct

import pytest

from repro.bdd import ArrayBddManager, BddManager
from repro.core.simulator import BitSliceSimulator
from repro.snapshot import (
    SnapshotCorruptError,
    dump_manager,
    dump_simulator,
    load_manager,
    load_simulator,
    read_snapshot,
    snapshot_info,
    write_snapshot,
)
from tests.conftest import universal_mix

try:
    from repro.bdd._compiled import CompiledBddManager
except ImportError:  # pragma: no cover - numpy-less environments
    CompiledBddManager = None

BACKENDS = [("dict", BddManager), ("array", ArrayBddManager)]
if CompiledBddManager is not None:
    BACKENDS.append(("compiled", CompiledBddManager))
BACKEND_IDS = [name for name, _ in BACKENDS]

_MAGIC_LEN = 10          # b"REPROSNAP1"
_SECTION_HEAD = struct.Struct("<HQI")
_COUNT = struct.Struct("<I")


def simulator_blob(factory, path):
    """A valid simulator snapshot for ``factory``'s backend, as bytes."""
    manager = factory(3)
    simulator = BitSliceSimulator(3, manager=manager)
    simulator.run(universal_mix(3, seed=5, measure=False))
    # Collected scratch nodes give the snapshot a non-empty free list —
    # the partition and field-width probes below need one.
    manager.apply_and(
        manager.apply_xor(manager.var_node(0), manager.var_node(1)),
        manager.var_node(2))
    manager.garbage_collect()
    dump_simulator(simulator, path)
    return path.read_bytes()


def section_layout(blob):
    """Parse the container layout: ``[(name, payload_start, payload_end)]``
    plus the offset where sections begin — the test's own tiny reader, so
    damage coordinates are independent of the code under test."""
    offset = _MAGIC_LEN + 4                       # magic + version
    (kind_len,) = _COUNT.unpack_from(blob, offset)
    offset += 4 + kind_len
    (count,) = _COUNT.unpack_from(blob, offset)
    offset += 4
    sections = []
    for _ in range(count):
        name_len, payload_len, _crc = _SECTION_HEAD.unpack_from(blob, offset)
        offset += _SECTION_HEAD.size
        name = blob[offset:offset + name_len].decode("utf-8")
        offset += name_len
        sections.append((name, offset, offset + payload_len))
        offset += payload_len
    assert offset == len(blob)
    return sections


def expect_corrupt(path):
    with pytest.raises(SnapshotCorruptError) as excinfo:
        load_simulator(path)
    error = excinfo.value
    # The section is always named (it may be unprintable when the damage
    # hit a section *name*; the precise-naming pin lives in
    # test_payload_flip_names_the_damaged_section).
    assert isinstance(error.section, str) and error.section
    assert error.path == str(path)
    assert str(path) in str(error)
    return error


@pytest.mark.parametrize("name,factory", BACKENDS, ids=BACKEND_IDS)
class TestTornAndFlipped:
    def test_truncation_at_every_structural_boundary(self, name, factory,
                                                     tmp_path):
        """Cut the file at every section boundary and just inside every
        payload (every field width a torn write can leave behind): the
        loader always reports corruption, never returns."""
        source = tmp_path / "good.snap"
        blob = simulator_blob(factory, source)
        cuts = {0, 1, _MAGIC_LEN - 1, _MAGIC_LEN, _MAGIC_LEN + 2,
                _MAGIC_LEN + 4}
        for _name, start, end in section_layout(blob):
            head = start - _SECTION_HEAD.size
            cuts.update({head, head + 1, head + 2, head + 8,
                         start - 1, start, start + 1,
                         end - 1, (start + end) // 2})
        victim = tmp_path / "torn.snap"
        for cut in sorted(c for c in cuts if 0 <= c < len(blob)):
            victim.write_bytes(blob[:cut])
            expect_corrupt(victim)

    def test_single_bit_flips_across_the_file(self, name, factory,
                                              tmp_path):
        """Flip one bit at a stride across the entire file (headers,
        section heads, every payload): always SnapshotCorruptError."""
        source = tmp_path / "good.snap"
        blob = simulator_blob(factory, source)
        victim = tmp_path / "flipped.snap"
        offsets = set(range(0, len(blob), 97))
        offsets.update({0, 3, len(blob) - 1, len(blob) // 2})
        for offset in sorted(offsets):
            for bit in (0, 7):
                damaged = bytearray(blob)
                damaged[offset] ^= 1 << bit
                victim.write_bytes(bytes(damaged))
                expect_corrupt(victim)

    def test_payload_flip_names_the_damaged_section(self, name, factory,
                                                    tmp_path):
        """A bit flip inside a payload is caught by *that section's* CRC:
        the error names it, for every section in the container."""
        source = tmp_path / "good.snap"
        blob = simulator_blob(factory, source)
        victim = tmp_path / "flipped.snap"
        layout = section_layout(blob)
        assert {entry[0] for entry in layout} == {
            "meta", "var", "low", "high", "unique", "free", "order",
            "refs", "knobs", "counters", "state", "simulator", "extra"}
        for section, start, end in layout:
            if end == start:
                continue
            damaged = bytearray(blob)
            damaged[(start + end) // 2] ^= 0x10
            victim.write_bytes(bytes(damaged))
            error = expect_corrupt(victim)
            assert error.section == section
            assert "CRC32" in str(error)


class TestContainerDamage:
    def test_empty_missing_and_alien_files(self, tmp_path):
        empty = tmp_path / "empty.snap"
        empty.write_bytes(b"")
        expect_corrupt(empty)
        with pytest.raises(SnapshotCorruptError) as excinfo:
            load_simulator(tmp_path / "nonexistent.snap")
        assert "unreadable" in str(excinfo.value)
        alien = tmp_path / "alien.snap"
        alien.write_bytes(b"#!/usr/bin/env python\nprint('not a snapshot')\n")
        assert "magic" in str(expect_corrupt(alien))

    def test_unknown_format_version_is_refused(self, tmp_path):
        path = tmp_path / "future.snap"
        blob = bytearray(simulator_blob(BddManager, path))
        blob[_MAGIC_LEN:_MAGIC_LEN + 4] = struct.pack("<I", 99)
        path.write_bytes(bytes(blob))
        error = expect_corrupt(path)
        assert "version 99" in str(error)
        with pytest.raises(SnapshotCorruptError):
            snapshot_info(path)

    def test_wrong_kind_is_refused_both_ways(self, tmp_path):
        manager_path = tmp_path / "manager.snap"
        dump_manager(BddManager(2), manager_path)
        with pytest.raises(SnapshotCorruptError) as excinfo:
            load_simulator(manager_path)
        assert "'manager'" in str(excinfo.value)
        simulator_path = tmp_path / "sim.snap"
        simulator_blob(BddManager, simulator_path)
        with pytest.raises(SnapshotCorruptError):
            load_manager(simulator_path)

    def test_trailing_garbage_and_duplicate_sections(self, tmp_path):
        path = tmp_path / "sim.snap"
        blob = simulator_blob(BddManager, path)
        path.write_bytes(blob + b"\x00" * 7)
        assert "trailing" in str(expect_corrupt(path))

    def test_missing_section_is_corruption_not_a_crash(self, tmp_path):
        """A structurally valid container lacking a required section is
        still SnapshotCorruptError — never a KeyError leaking out."""
        path = tmp_path / "sim.snap"
        blob = simulator_blob(BddManager, path)
        sections = read_snapshot(path, "simulator")
        for missing in ("meta", "var", "free", "state", "extra"):
            partial = {k: v for k, v in sections.items() if k != missing}
            crafted = tmp_path / f"no-{missing}.snap"
            write_snapshot(crafted, "simulator", partial)
            error = expect_corrupt(crafted)
            assert error.section == missing
        assert path.read_bytes() == blob  # source untouched throughout


class TestSemanticInconsistency:
    """Damage that passes every CRC — internally inconsistent payloads
    re-signed through write_snapshot — is caught by the validators."""

    def _recraft(self, tmp_path, mutate):
        path = tmp_path / "sim.snap"
        simulator_blob(BddManager, path)
        sections = dict(read_snapshot(path, "simulator"))
        mutate(sections)
        crafted = tmp_path / "crafted.snap"
        write_snapshot(crafted, "simulator", sections)
        return expect_corrupt(crafted)

    def test_column_length_mismatch(self, tmp_path):
        error = self._recraft(tmp_path,
                              lambda s: s.update(var=s["var"][:-8]))
        assert error.section == "var"

    def test_non_multiple_of_field_width(self, tmp_path):
        """A payload that is not a whole number of 64-bit fields (torn at
        an intra-field byte) is rejected before decoding."""
        for width in range(1, 8):
            error = self._recraft(
                tmp_path, lambda s, w=width: s.update(free=s["free"] + b"x" * w))
            assert error.section == "free"
            assert "multiple of 8" in str(error)

    def test_free_and_unique_must_partition_the_store(self, tmp_path):
        def drop_free_entry(sections):
            sections["free"] = sections["free"][:-8]
        error = self._recraft(tmp_path, drop_free_entry)
        assert error.section in ("unique", "free")

    def test_order_must_be_a_permutation(self, tmp_path):
        def scramble(sections):
            order = bytearray(sections["order"])
            order[0:8] = struct.pack("<q", 7777)
            sections["order"] = bytes(order)
        error = self._recraft(tmp_path, scramble)
        assert error.section == "order"

    def test_refs_must_be_pairs(self, tmp_path):
        error = self._recraft(
            tmp_path,
            lambda s: s.update(refs=s["refs"] + struct.pack("<q", 3)))
        assert error.section == "refs"

    def test_json_payload_must_parse(self, tmp_path):
        error = self._recraft(tmp_path,
                              lambda s: s.update(meta=b"{not json"))
        assert error.section == "meta"
        assert "JSON" in str(error)

    def test_state_slice_to_dead_node(self, tmp_path):
        import json

        def point_into_space(sections):
            payload = json.loads(sections["state"].decode())
            payload["slices"]["a"][0] = 10 ** 9
            sections["state"] = json.dumps(payload).encode()
        error = self._recraft(tmp_path, point_into_space)
        assert error.section == "state"

    def test_unknown_substrate_name(self, tmp_path):
        import json

        def rename(sections):
            payload = json.loads(sections["meta"].decode())
            payload["substrate"] = "quantum-foam"
            sections["meta"] = json.dumps(payload).encode()
        error = self._recraft(tmp_path, rename)
        assert error.section == "meta"
        assert "substrate" in str(error)

"""End-to-end service tests: a real server, real sockets, real traffic.

Every test here starts an actual :func:`repro.serve_background` server and
talks to it over TCP — no mocked transports — covering the acceptance
criteria of the service PR: concurrent wire sweeps byte-identical to local
serial execution, bounded-queue structured rejects, disconnect
cancellation, warm session appends recording prefix hits, and the admin
watch surface.
"""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

import repro
from repro import Client, QuantumCircuit, ResourceLimits, ServiceError
from repro.engines.frontdoor import run_tasks
from repro.harness.experiments import accuracy_circuit
from repro.service import serve_background
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import MIN_WATCH_INTERVAL
from repro.service.watch import format_frame, main as watch_main
from repro.workloads.random_circuits import generate_random_circuit

#: Slow enough (~2 s bit-sliced) to still be running when a cancel or a
#: flood of follow-up submissions arrives.
HEAVY = accuracy_circuit(8, 12)


def _sweep_tasks():
    circuits = [generate_random_circuit(n, seed=90 + n) for n in (4, 5, 6)]
    return [(engine, circuit)
            for circuit in circuits
            for engine in ("bitslice", "qmdd")]


def _deterministic(results):
    return [result.to_dict(timings=False) for result in results]


@pytest.fixture(scope="module")
def server():
    with serve_background(workers=2, queue_depth=16) as background:
        yield background


def test_concurrent_clients_match_local_serial_sweep(server):
    """Eight clients mixing sweeps, single runs and session appends all see
    results byte-identical to local serial execution."""
    tasks = _sweep_tasks()
    single = QuantumCircuit(3, name="single").h(0).cx(0, 1).cx(1, 2)
    single.measure_all()
    expected_sweep = _deterministic(run_tasks(tasks, shots=8, seed=77))
    expected_single = repro.run(single, shots=32,
                                seed=5).to_dict(timings=False)
    base = QuantumCircuit(4, name="warm").h(0).cx(0, 1)
    delta = QuantumCircuit(4, name="delta").cx(1, 2).cx(2, 3)
    expected_append = repro.run(
        base.copy(name="delta").cx(1, 2).cx(2, 3),
        engine="bitslice").to_dict(timings=False)

    failures = []

    def sweep_worker():
        with Client(server.address) as client:
            got = _deterministic(client.run_tasks(tasks, shots=8, seed=77))
            if got != expected_sweep:
                failures.append("sweep mismatch")

    def run_worker():
        with Client(server.address) as client:
            got = client.run(single, shots=32, seed=5).to_dict(timings=False)
            if got != expected_single:
                failures.append("single-run mismatch")

    def session_worker():
        with Client(server.address) as client:
            session_id = client.open_session(4, engine="bitslice")
            first = client.append(session_id, base)
            second = client.append(session_id, delta)
            client.close_session(session_id)
            if first.status != "ok":
                failures.append("append base failed")
            if second.to_dict(timings=False) != expected_append:
                failures.append("append mismatch")

    workers = ([threading.Thread(target=sweep_worker) for _ in range(4)]
               + [threading.Thread(target=run_worker) for _ in range(2)]
               + [threading.Thread(target=session_worker) for _ in range(2)])
    assert len(workers) >= 8
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=300)
        assert not thread.is_alive(), "client worker hung"
    assert failures == []


def test_warm_session_appends_record_prefix_hits(server):
    with Client(server.address) as client:
        before = client.stats()["counters"]
        session_id = client.open_session(5, engine="bitslice")
        cumulative_gates = 0
        for index in range(3):
            delta = QuantumCircuit(5, name=f"step{index}")
            delta.h(index).cx(index, index + 1)
            result = client.append(session_id, delta)
            assert result.status == "ok"
            # Every append resumes from the stored state — the first from
            # the pinned |0> prefix at depth 0, later ones deeper.
            assert result.extra.get("resumed_from_depth") == cumulative_gates
            cumulative_gates += 2
        appends = client.close_session(session_id)
        assert appends == 3
        after = client.stats()["counters"]
    assert (after.get("service_session_resume_hits", 0)
            - before.get("service_session_resume_hits", 0)) == 3
    assert (after.get("service_session_gates_saved", 0)
            - before.get("service_session_gates_saved", 0)) == 6
    assert (after.get("prefix_resume_hits", 0)
            - before.get("prefix_resume_hits", 0)) >= 3


def test_concurrent_appends_on_one_session_all_land():
    """Appends in flight together on one session must all commit: the
    base snapshot is taken on the worker under the session lock, so the
    second append extends the first one's result instead of overwriting
    it with a stale dispatch-time base (the lost-update race)."""
    from repro.service.protocol import (AppendToSession, JobAccepted,
                                        RunCompleted)

    with serve_background(workers=1, queue_depth=8) as background:
        with Client(background.address) as client:
            session_id = client.open_session(4, engine="bitslice")
            # Park the single worker on a heavy job, so both appends are
            # dispatched — and held queued — before either one runs.
            blocker = client.submit(HEAVY, engine="bitslice")
            msg_ids = []
            for qubit in (0, 1):
                delta = QuantumCircuit(4, name=f"race{qubit}").x(qubit)
                msg_id = client._send(AppendToSession(session_id, delta))
                client._wait(msg_id, accept=(JobAccepted,))
                msg_ids.append(msg_id)
            client.cancel(blocker)
            for msg_id in msg_ids:
                reply = client._wait(msg_id, accept=(RunCompleted,))
                assert reply.result.status == "ok"
            row = next(r for r in client.sessions()
                       if r["session_id"] == session_id)
            # Both deltas' gates are in the cumulative circuit — neither
            # was dropped by a stale-base overwrite.
            assert row["gates"] == 2
            assert client.close_session(session_id) == 2


def test_watch_interval_is_floored(server):
    """A watch subscriber asking for interval=0 cannot busy-loop the
    server: frames arrive no faster than MIN_WATCH_INTERVAL."""
    with Client(server.address) as client:
        started = time.perf_counter()
        frames = list(client.watch(interval=0.0, count=3))
        elapsed = time.perf_counter() - started
    assert len(frames) == 3
    assert elapsed >= 2 * MIN_WATCH_INTERVAL * 0.9


def test_queue_full_is_a_structured_reject_not_a_hang():
    with serve_background(workers=1, queue_depth=2) as small:
        with Client(small.address) as client:
            accepted = []
            rejected = None
            started = time.perf_counter()
            for _ in range(8):
                try:
                    accepted.append(client.submit(HEAVY, engine="bitslice"))
                except ServiceError as exc:
                    rejected = exc
                    break
            elapsed = time.perf_counter() - started
            assert rejected is not None, "flood never hit the queue bound"
            assert rejected.code == "queue_full"
            assert rejected.details["capacity"] == 2
            assert rejected.details["depth"] == 2
            # The reject is immediate backpressure, not a queue-drain wait.
            assert elapsed < 30
            # 2 queued + the one the worker already picked up (3), or 2 if
            # the flood outran the worker's first dequeue.
            assert len(accepted) in (2, 3)
            for job_id in accepted[1:]:
                client.cancel(job_id)


def test_disconnect_cancels_outstanding_jobs():
    with serve_background(workers=1, queue_depth=8) as background:
        client = Client(background.address)
        client.submit(HEAVY, engine="bitslice")
        client.submit(HEAVY, engine="bitslice")
        client.close()  # vanish with one job running and one queued
        with Client(background.address) as admin:
            deadline = time.time() + 60
            while True:
                counters = admin.stats()["counters"]
                if counters.get("service_disconnect_cancels", 0) >= 2:
                    break
                assert time.time() < deadline, (
                    f"disconnect cancels never recorded: {counters}")
                time.sleep(0.05)
            # The worker must come free again for other clients.
            deadline = time.time() + 60
            while admin.stats()["running"] > 0:
                assert time.time() < deadline, "cancelled job still running"
                time.sleep(0.05)


def test_cancelled_append_releases_the_session_lock(server):
    with Client(server.address) as client:
        session_id = client.open_session(8, engine="bitslice")
        from repro.service.protocol import AppendToSession, JobAccepted

        msg_id = client._send(AppendToSession(session_id, HEAVY))
        accepted = client._wait(msg_id, accept=(JobAccepted,))
        outcome = client.cancel(accepted.job_id)
        assert outcome in ("cancelled", "cancelling")
        # Drain the terminal reply of the cancelled append (an error).
        with pytest.raises(ServiceError) as excinfo:
            client._wait(msg_id, accept=())
        assert excinfo.value.code == "cancelled"
        # The session must not be wedged: a follow-up append succeeds.
        delta = QuantumCircuit(8, name="after-cancel").h(0)
        result = client.append(session_id, delta)
        assert result.status == "ok"
        client.close_session(session_id)


def test_error_codes_unknown_session_and_bad_request(server):
    with Client(server.address) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.append("s999999", QuantumCircuit(2).h(0))
        assert excinfo.value.code == "unknown_session"
        session_id = client.open_session(3)
        with pytest.raises(ServiceError) as excinfo:
            client.append(session_id, QuantumCircuit(5).h(0))  # wrong width
        assert excinfo.value.code == "bad_request"
        client.close_session(session_id)


def test_session_limit_is_a_structured_reject():
    with serve_background(max_sessions=2) as background:
        with Client(background.address) as client:
            ids = [client.open_session(2) for _ in range(2)]
            with pytest.raises(ServiceError) as excinfo:
                client.open_session(2)
            assert excinfo.value.code == "too_many_sessions"
            assert excinfo.value.details["limit"] == 2
            for session_id in ids:
                client.close_session(session_id)


def test_raw_wire_rejects_garbage_and_version_mismatch(server):
    host, port = server.address
    with socket.create_connection((host, port), timeout=30) as raw:
        reader = raw.makefile("rb")
        raw.sendall(b"not json at all\n")
        reply = json.loads(reader.readline())
        assert reply["kind"] == "error"
        assert reply["code"] == "bad_request"
        raw.sendall(json.dumps(
            {"kind": "server_stats", "v": PROTOCOL_VERSION + 5,
             "id": "c1"}).encode() + b"\n")
        reply = json.loads(reader.readline())
        assert reply["kind"] == "error"
        assert reply["code"] == "version_mismatch"


def test_list_sessions_and_stats_surface(server):
    with Client(server.address) as client:
        session_id = client.open_session(4, engine="bitslice")
        rows = client.sessions()
        row = next(r for r in rows if r["session_id"] == session_id)
        assert row["engine"] == "bitslice"
        assert row["num_qubits"] == 4
        stats = client.stats()
        assert stats["queue_capacity"] == 16
        assert stats["live_sessions"] >= 1
        assert stats["uptime_seconds"] > 0
        assert stats["counters"]["service_requests_total"] >= 1
        client.close_session(session_id)


def test_watch_stream_and_cli(server):
    with Client(server.address) as client:
        frames = list(client.watch(interval=0.01, count=3))
    assert len(frames) == 3
    assert all("queue_depth" in frame for frame in frames)
    line = format_frame(frames[-1])
    assert line.startswith("q=")
    assert "sessions=" in line and "prefix_hits=" in line

    host, port = server.address
    out = io.StringIO()
    rc = watch_main(["--connect", f"{host}:{port}", "--interval", "0.01",
                     "--count", "2"], stream=out)
    assert rc == 0
    lines = [l for l in out.getvalue().splitlines() if l]
    assert len(lines) == 2
    assert all(l.startswith("q=") for l in lines)


def test_unix_socket_transport(tmp_path):
    path = str(tmp_path / "repro.sock")
    with serve_background(unix_path=path) as background:
        assert background.address == path
        with Client(f"unix:{path}") as client:
            result = client.run(QuantumCircuit(2, name="ux").h(0).cx(0, 1))
            assert result.status == "ok"


def test_priority_jobs_overtake_the_queue():
    with serve_background(workers=1, queue_depth=8) as background:
        with Client(background.address) as client:
            blocker = client.submit(HEAVY, engine="bitslice")
            quick = QuantumCircuit(2, name="quick").h(0).cx(0, 1)
            low_id = client.submit(quick, priority=0)
            high_id = client.submit(quick, priority=5)
            assert low_id != high_id
            client.cancel(blocker)
            # Terminal replies arrive in completion order: the cancelled
            # blocker's error first, then the high-priority job, then the
            # low-priority one submitted before it.
            completed = []
            while len(completed) < 2:
                message, _ = client._read_reply()
                if message.kind == "run_result":
                    completed.append(message.job_id)
                else:
                    assert message.kind in ("error", "cancel_result")
            assert completed == [high_id, low_id]

"""Tests for the repro.service subsystem."""

"""JobScheduler: bounded depth, priorities, cancellation, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import JobCancelledError
from repro.perf.counters import PerfCounters
from repro.service.scheduler import (FINISHED_IDS_CAP, JobScheduler,
                                     QueueFullError)


def _blocker():
    """A job fn that parks on an event until released, plus its controls."""
    release = threading.Event()
    started = threading.Event()

    def fn(cancel):
        started.set()
        release.wait(timeout=30)
        if cancel.is_set():
            raise JobCancelledError("observed cancel")
        return "done"
    return fn, release, started


@pytest.fixture
def scheduler():
    sched = JobScheduler(max_depth=4, workers=1, counters=PerfCounters())
    sched.start()
    yield sched
    sched.stop()


def test_jobs_run_and_resolve_futures(scheduler):
    job = scheduler.submit(lambda cancel: 41 + 1)
    assert job.future.result(timeout=10) == 42
    assert scheduler.counters.get("service_jobs_completed") == 1


def test_priorities_dequeue_high_first_ties_fifo(scheduler):
    fn, release, started = _blocker()
    scheduler.submit(fn)  # occupies the single worker
    started.wait(timeout=10)
    order = []

    def recorder(tag):
        return lambda cancel: order.append(tag)
    low_a = scheduler.submit(recorder("low_a"), priority=0)
    high = scheduler.submit(recorder("high"), priority=5)
    low_b = scheduler.submit(recorder("low_b"), priority=0)
    release.set()
    for job in (low_a, high, low_b):
        job.future.result(timeout=10)
    assert order == ["high", "low_a", "low_b"]


def test_queue_full_rejects_structurally(scheduler):
    fn, release, started = _blocker()
    scheduler.submit(fn)
    started.wait(timeout=10)
    for _ in range(scheduler.max_depth):
        scheduler.submit(lambda cancel: None)
    with pytest.raises(QueueFullError) as excinfo:
        scheduler.submit(lambda cancel: None)
    assert excinfo.value.depth == scheduler.max_depth
    assert excinfo.value.capacity == scheduler.max_depth
    assert scheduler.counters.get("service_queue_rejects") == 1
    release.set()


def test_cancel_queued_job_never_runs(scheduler):
    fn, release, started = _blocker()
    scheduler.submit(fn)
    started.wait(timeout=10)
    ran = threading.Event()
    queued = scheduler.submit(lambda cancel: ran.set())
    assert scheduler.cancel(queued.job_id) == "cancelled"
    release.set()
    with pytest.raises(JobCancelledError):
        queued.future.result(timeout=10)
    # The worker must skip the cancelled entry, not execute it.
    scheduler.submit(lambda cancel: None).future.result(timeout=10)
    assert not ran.is_set()


def test_cancel_running_job_sets_token(scheduler):
    fn, release, started = _blocker()
    job = scheduler.submit(fn)
    started.wait(timeout=10)
    assert scheduler.cancel(job.job_id) == "cancelling"
    release.set()
    with pytest.raises(JobCancelledError):
        job.future.result(timeout=10)
    assert scheduler.counters.get("service_jobs_cancelled") == 1


def test_cancel_outcomes_finished_and_unknown(scheduler):
    job = scheduler.submit(lambda cancel: 1)
    job.future.result(timeout=10)
    deadline = time.time() + 10
    while scheduler.cancel(job.job_id) != "finished":
        assert time.time() < deadline
        time.sleep(0.01)
    assert scheduler.cancel("j999") == "unknown"


def test_finished_ids_decay_beyond_cap(scheduler):
    """cancel() keeps classifying recent completions as "finished" with a
    bounded memory: ids older than the newest FINISHED_IDS_CAP decay to
    "unknown" instead of the set growing forever."""
    first = scheduler.submit(lambda cancel: None)
    first.future.result(timeout=10)
    assert scheduler.cancel(first.job_id) == "finished"
    job = first
    for _ in range(FINISHED_IDS_CAP):
        job = scheduler.submit(lambda cancel: None)
        job.future.result(timeout=10)
    assert scheduler.cancel(job.job_id) == "finished"
    assert scheduler.cancel(first.job_id) == "unknown"


def test_failed_job_propagates_exception(scheduler):
    def boom(cancel):
        raise ValueError("broken workload")
    job = scheduler.submit(boom)
    with pytest.raises(ValueError, match="broken workload"):
        job.future.result(timeout=10)
    assert scheduler.counters.get("service_jobs_failed") == 1


def test_stats_gauges(scheduler):
    fn, release, started = _blocker()
    scheduler.submit(fn)
    started.wait(timeout=10)
    scheduler.submit(lambda cancel: None)
    stats = scheduler.stats()
    assert stats["queue_capacity"] == 4
    assert stats["workers"] == 1
    assert stats["running"] == 1
    assert stats["queue_depth"] == 1
    release.set()


def test_stop_concludes_queued_jobs_and_rejects_submissions():
    sched = JobScheduler(max_depth=4, workers=1)
    sched.start()
    fn, release, started = _blocker()
    sched.submit(fn)
    started.wait(timeout=10)
    queued = sched.submit(lambda cancel: None)
    release.set()
    sched.stop()
    with pytest.raises(JobCancelledError):
        queued.future.result(timeout=10)
    with pytest.raises(RuntimeError):
        sched.submit(lambda cancel: None)


def test_constructor_validates_bounds():
    with pytest.raises(ValueError):
        JobScheduler(max_depth=0)
    with pytest.raises(ValueError):
        JobScheduler(workers=0)

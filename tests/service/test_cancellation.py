"""Per-job budgets and cooperative cancellation (LimitEnforcer regressions).

These pin the service's core safety contract: budgets are scoped to the
job, never the process; a cancel token fired for one job cannot leak into
the next; and a cancelled run unwinds through the same ``finally`` blocks
as a timeout, releasing any held session-pool chain lock.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro import QuantumCircuit, ResourceLimits, SessionPool
from repro.engines.limits import LimitEnforcer
from repro.engines.registry import create_engine
from repro.exceptions import JobCancelledError, SimulationTimeout


def test_begin_job_restarts_the_budget_clock():
    enforcer = LimitEnforcer(create_engine("bitslice"),
                             ResourceLimits(max_seconds=0.05, max_nodes=None))
    enforcer.begin_job()
    time.sleep(0.08)
    with pytest.raises(SimulationTimeout):
        enforcer.check()
    # A new job gets the full budget: the previous job's elapsed time is
    # discarded, never accumulated across the process lifetime.
    enforcer.begin_job()
    enforcer.check()
    assert enforcer.elapsed_seconds() < 0.05


def test_execute_opens_a_fresh_job_each_call():
    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    enforcer = LimitEnforcer(create_engine("bitslice"),
                             ResourceLimits(max_seconds=0.3, max_nodes=None))
    enforcer.execute(circuit)
    time.sleep(0.35)  # longer than the whole budget
    enforcer.execute(circuit)  # would time out if the clock persisted


def test_cancel_token_does_not_leak_into_the_next_job():
    enforcer = LimitEnforcer(create_engine("bitslice"),
                             ResourceLimits(max_nodes=None))
    token = threading.Event()
    token.set()
    enforcer.begin_job(cancel_token=token)
    with pytest.raises(JobCancelledError):
        enforcer.check()
    # The next job passes no token: cancellation must be cleared, not
    # inherited from the cancelled job.
    enforcer.begin_job()
    enforcer.check()


def test_set_token_cancels_execute_between_gates():
    circuit = QuantumCircuit(3, name="c")
    for _ in range(4):
        circuit.h(0).cx(0, 1).cx(1, 2)
    token = threading.Event()
    token.set()
    enforcer = LimitEnforcer(create_engine("bitslice"), cancel_token=token)
    with pytest.raises(JobCancelledError):
        enforcer.execute(circuit)


def test_run_propagates_cancellation_not_an_outcome():
    token = threading.Event()
    token.set()
    with pytest.raises(JobCancelledError):
        repro.run(QuantumCircuit(2).h(0).cx(0, 1), engine="bitslice",
                  cancel=token)


def test_cancelled_run_releases_the_session_chain_lock():
    pool = SessionPool()
    base = QuantumCircuit(4, name="base").h(0).cx(0, 1)
    extended = base.copy(name="extended").cx(1, 2).cx(2, 3)

    first = repro.run(base, engine="bitslice", sessions=pool)
    assert first.status == "ok"

    token = threading.Event()
    token.set()
    with pytest.raises(JobCancelledError):
        repro.run(extended, engine="bitslice", sessions=pool, cancel=token)

    # The cancelled run resumed the deposited prefix and held its chain
    # lock; the unwind must release it, or this retry reports the prefix
    # as busy (or deadlocks) instead of resuming.
    retry = repro.run(extended, engine="bitslice", sessions=pool)
    assert retry.status == "ok"
    assert retry.extra.get("resumed_from_depth", 0) >= 2
    assert pool.stats().get("prefix_busy", 0) == 0

"""Service sessions that survive restarts (``Server(checkpoint_dir=...)``).

The service face of the checkpointing tentpole: every committed append
snapshots the session's warm state; a restarted server rehydrates the
snapshots — same session ids, same cumulative circuits, and the very
next append resumes *warm* (``resumed_from_depth``), byte-identical to a
local cold run of the cumulative circuit.  Stale or corrupt snapshots
are counted and skipped, never fatal; closing a session removes its
file, so nothing leaks.  Also pins the ``serve_background`` startup-
failure cleanup (no stale unix socket, no leaked worker threads).
"""

from __future__ import annotations

import asyncio
import os
import threading

import pytest

import repro
from repro import Client, QuantumCircuit
from repro.service import serve_background
from repro.service.watch import format_frame
from tests.conftest import ghz


def session_dir(checkpoint_dir):
    return os.path.join(checkpoint_dir, "sessions")


def ckpt_files(checkpoint_dir):
    directory = session_dir(checkpoint_dir)
    if not os.path.isdir(directory):
        return []
    return sorted(os.listdir(directory))


BASE = QuantumCircuit(4, name="base").h(0).cx(0, 1)
DELTA = QuantumCircuit(4, name="delta").cx(1, 2).cx(2, 3)
TAIL = QuantumCircuit(4, name="tail").t(0).h(3)


def test_sessions_survive_restart_and_resume_warm(tmp_path):
    ckpt_dir = str(tmp_path / "ckpts")
    # --- first server lifetime: build up a session, then die hard. ---
    with serve_background(workers=1, queue_depth=8,
                          checkpoint_dir=ckpt_dir) as background:
        with Client(background.address) as client:
            session_id = client.open_session(4, engine="bitslice")
            assert client.append(session_id, BASE).status == "ok"
            assert client.append(session_id, DELTA).status == "ok"
            health = client.health()
            assert health["checkpointed_sessions"] == 1
            assert health["restored_sessions"] == 0
            assert health["checkpoint_age_seconds"] >= 0.0
            counters = client.stats()["counters"]
            assert counters.get("snapshot_session_writes", 0) == 2
        # BackgroundServer.stop() is a hard stop: no drain, no close —
        # the moral equivalent of SIGKILL for on-disk state.
    assert ckpt_files(ckpt_dir) == [f"{session_id}.ckpt"]

    # --- second lifetime: same checkpoint_dir, state comes back. ---
    with serve_background(workers=1, queue_depth=8,
                          checkpoint_dir=ckpt_dir) as background:
        with Client(background.address) as client:
            health = client.health()
            assert health["restored_sessions"] == 1
            counters = client.stats()["counters"]
            assert counters.get("snapshot_sessions_restored", 0) == 1
            assert counters.get("snapshot_sessions_skipped", 0) == 0
            rows = client.sessions()
            assert [row["session_id"] for row in rows] == [session_id]
            assert rows[0]["appends"] == 2
            assert rows[0]["gates"] == BASE.num_gates + DELTA.num_gates
            # The next append resumes from the restored warm state ...
            cumulative = BASE.copy(name="tail")
            for gate in DELTA.gates:
                cumulative.append(gate)
            for gate in TAIL.gates:
                cumulative.append(gate)
            expected = repro.run(cumulative,
                                 engine="bitslice").to_dict(timings=False)
            result = client.append(session_id, TAIL)
            assert result.status == "ok"
            # ... warm: only TAIL's gates execute after the restored depth.
            assert (result.extra["resumed_from_depth"]
                    == BASE.num_gates + DELTA.num_gates)
            assert result.to_dict(timings=False) == expected
            # A new session never collides with a restored id.
            fresh = client.open_session(4, engine="bitslice")
            assert fresh != session_id
            assert client.close_session(fresh) == 0
            assert client.close_session(session_id) == 3
            assert client.sessions() == []
    assert ckpt_files(ckpt_dir) == []  # zero leaked session checkpoints


def test_corrupt_and_alien_checkpoints_are_skipped_not_fatal(tmp_path):
    ckpt_dir = str(tmp_path / "ckpts")
    with serve_background(workers=1, queue_depth=8,
                          checkpoint_dir=ckpt_dir) as background:
        with Client(background.address) as client:
            good = client.open_session(3, engine="bitslice")
            victim = client.open_session(3, engine="bitslice")
            assert client.append(good, ghz(3)).status == "ok"
            assert client.append(victim, ghz(3)).status == "ok"
    # Bit-flip one snapshot, drop an alien file beside it.
    victim_path = os.path.join(session_dir(ckpt_dir), f"{victim}.ckpt")
    blob = bytearray(open(victim_path, "rb").read())
    blob[len(blob) // 2] ^= 0x08
    with open(victim_path, "wb") as handle:
        handle.write(bytes(blob))
    alien = os.path.join(session_dir(ckpt_dir), "sX.ckpt")
    with open(alien, "wb") as handle:
        handle.write(b"not a snapshot at all")
    with serve_background(workers=1, queue_depth=8,
                          checkpoint_dir=ckpt_dir) as background:
        with Client(background.address) as client:
            health = client.health()
            assert health["state"] == "ok"
            assert health["restored_sessions"] == 1
            counters = client.stats()["counters"]
            assert counters.get("snapshot_sessions_skipped", 0) == 2
            rows = client.sessions()
            assert [row["session_id"] for row in rows] == [good]
            # The surviving session still works, warm.
            result = client.append(good, QuantumCircuit(3, name="t").t(0))
            assert result.status == "ok"
            assert result.extra["resumed_from_depth"] == ghz(3).num_gates
            stats = client.stats()
            line = format_frame(stats)
            assert f"ckpt={stats['checkpointed_sessions']}" in line
            assert client.close_session(good) == 2


def test_id_mismatched_checkpoint_is_skipped(tmp_path):
    """A snapshot renamed to another session's filename is stale by
    definition (its recorded identity disagrees) — skipped, not adopted
    under the wrong id."""
    ckpt_dir = str(tmp_path / "ckpts")
    with serve_background(workers=1, queue_depth=8,
                          checkpoint_dir=ckpt_dir) as background:
        with Client(background.address) as client:
            session_id = client.open_session(2, engine="bitslice")
            assert client.append(session_id, ghz(2)).status == "ok"
    source = os.path.join(session_dir(ckpt_dir), f"{session_id}.ckpt")
    os.rename(source, os.path.join(session_dir(ckpt_dir), "s999.ckpt"))
    with serve_background(workers=1, queue_depth=8,
                          checkpoint_dir=ckpt_dir) as background:
        with Client(background.address) as client:
            assert client.sessions() == []
            counters = client.stats()["counters"]
            assert counters.get("snapshot_sessions_skipped", 0) == 1


def test_closing_a_session_removes_its_checkpoint_live(tmp_path):
    ckpt_dir = str(tmp_path / "ckpts")
    with serve_background(workers=1, queue_depth=8,
                          checkpoint_dir=ckpt_dir) as background:
        with Client(background.address) as client:
            session_id = client.open_session(3, engine="bitslice")
            assert client.append(session_id, ghz(3)).status == "ok"
            assert ckpt_files(ckpt_dir) == [f"{session_id}.ckpt"]
            assert client.close_session(session_id) == 1
            assert ckpt_files(ckpt_dir) == []


def test_server_without_checkpoint_dir_reports_inactive_gauges():
    with serve_background(workers=1, queue_depth=4) as background:
        with Client(background.address) as client:
            session_id = client.open_session(2, engine="bitslice")
            assert client.append(session_id, ghz(2)).status == "ok"
            health = client.health()
            assert health["checkpointed_sessions"] == 0
            assert health["restored_sessions"] == 0
            assert health["checkpoint_age_seconds"] == -1.0
            stats = client.stats()
            assert "ckpt=0/0r@-" in format_frame(stats)
            assert client.close_session(session_id) == 1


def test_registry_adoption_rules():
    from repro.service.sessions import ServiceSession, SessionRegistry

    registry = SessionRegistry(max_sessions=2)
    restored = registry.adopt_restored("s7", 3, "bitslice", None,
                                       ghz(3), appends=4)
    assert restored is not None
    assert restored.appends == 4
    assert restored.last_status == "restored"
    # Duplicate id: refused, not raised.
    assert registry.adopt(ServiceSession("s7", 3, "bitslice")) is False
    # The id counter advanced past every adopted s<N>.
    fresh = registry.open(2)
    assert fresh.session_id == "s8"
    # Full registry: adoption refused.
    assert registry.adopt_restored("s9", 2, "bitslice", None,
                                   ghz(2), appends=1) is None


def test_failed_startup_cleans_unix_socket_and_workers(tmp_path,
                                                       monkeypatch):
    """Satellite pin: ``serve_background`` whose startup dies after the
    unix bind (socket file on disk, scheduler threads running) must undo
    both — the next bind on that path works and no workers leak."""
    sock = tmp_path / "repro.sock"
    real = asyncio.start_unix_server

    async def bind_then_fail(*args, **kwargs):
        listener = await real(*args, **kwargs)
        listener.close()
        await listener.wait_closed()
        assert sock.exists()  # the bind's side effect is on disk
        raise RuntimeError("injected post-bind startup failure")

    monkeypatch.setattr(asyncio, "start_unix_server", bind_then_fail)
    before = {thread.name for thread in threading.enumerate()}
    with pytest.raises(RuntimeError, match="injected post-bind"):
        serve_background(unix_path=str(sock), workers=2)
    assert not sock.exists(), "failed startup left a stale socket file"
    leaked = {thread.name for thread in threading.enumerate()
              if thread.is_alive()} - before
    assert not any(name.startswith("repro-service-worker")
                   for name in leaked), leaked
    monkeypatch.undo()
    # The path is clean: a real server binds there immediately.
    with serve_background(unix_path=str(sock), workers=1) as background:
        with Client(f"unix:{sock}") as client:
            assert client.health()["state"] == "ok"
    assert not sock.exists()

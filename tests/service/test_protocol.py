"""Wire-protocol round-trips: circuits, limits, results, envelopes."""

from __future__ import annotations

import json

import pytest

import repro
from repro import GateKind, QuantumCircuit, ResourceLimits
from repro.cache import circuit_fingerprint
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ErrorReply,
    ProtocolError,
    SubmitRun,
    SubmitSweep,
    WatchRequest,
    circuit_from_wire,
    circuit_to_wire,
    decode_request,
    decode_response,
    encode_message,
    limits_from_wire,
    limits_to_wire,
    result_from_wire,
    result_to_wire,
)


def _dynamic_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="dyn3")
    circuit.h(0)
    circuit.measure_mid(0, 0)
    circuit.add(GateKind.X, [1], condition=1)
    circuit.cx(1, 2)
    circuit.reset(0)
    circuit.measure(1, 0)
    circuit.measure(2, 1)
    return circuit


def test_circuit_roundtrip_preserves_fingerprint():
    circuit = _dynamic_circuit()
    rebuilt = circuit_from_wire(circuit_to_wire(circuit))
    assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)
    assert rebuilt.name == circuit.name
    assert rebuilt.num_clbits == circuit.num_clbits
    assert rebuilt.final_measurement_map() == circuit.final_measurement_map()


def test_circuit_roundtrip_revalidates_gates():
    payload = circuit_to_wire(QuantumCircuit(2).h(0))
    payload["gates"][0]["targets"] = [5]  # out of range for 2 qubits
    with pytest.raises(ProtocolError):
        circuit_from_wire(payload)


def test_limits_roundtrip():
    limits = ResourceLimits(max_seconds=3.5, max_nodes=1234,
                            max_dense_qubits=20)
    assert limits_from_wire(limits_to_wire(limits)) == limits
    assert limits_to_wire(None) is None
    assert limits_from_wire(None) is None


def test_result_roundtrip_is_byte_identical():
    circuit = QuantumCircuit(2, name="bell").h(0).cx(0, 1).measure_all()
    result = repro.run(circuit, shots=32, seed=5)
    rebuilt = result_from_wire(
        json.loads(json.dumps(result_to_wire(result))))
    assert rebuilt.to_dict(timings=False) == result.to_dict(timings=False)
    assert rebuilt.counts == result.counts


def test_envelope_carries_kind_version_and_ids():
    line = encode_message(WatchRequest(interval=0.5, count=3),
                          msg_id="c9", in_reply_to="c1")
    envelope = json.loads(line)
    assert envelope["kind"] == "watch"
    assert envelope["v"] == PROTOCOL_VERSION
    assert envelope["id"] == "c9"
    assert envelope["in_reply_to"] == "c1"
    request, decoded = decode_request(line)
    assert isinstance(request, WatchRequest)
    assert request.interval == 0.5 and request.count == 3
    assert decoded["id"] == "c9"


def test_submit_run_roundtrip():
    circuit = QuantumCircuit(2, name="rt").h(0).cx(0, 1)
    line = encode_message(SubmitRun(circuit, engine="bitslice",
                                    limits=ResourceLimits(max_seconds=2),
                                    shots=8, seed=11, priority=2),
                          msg_id="c1")
    request, _ = decode_request(line)
    assert isinstance(request, SubmitRun)
    assert request.engine == "bitslice"
    assert request.shots == 8 and request.seed == 11
    assert request.priority == 2
    assert request.limits.max_seconds == 2
    assert circuit_fingerprint(request.circuit) == circuit_fingerprint(circuit)


def test_submit_sweep_tasks_roundtrip():
    circuits = [QuantumCircuit(2, name=f"t{i}").h(0) for i in range(3)]
    tasks = [("bitslice", c) for c in circuits]
    request, _ = decode_request(encode_message(SubmitSweep(tasks, seed=1)))
    assert isinstance(request, SubmitSweep)
    assert [engine for engine, _ in request.tasks] == ["bitslice"] * 3
    assert [c.name for _, c in request.tasks] == ["t0", "t1", "t2"]


def test_version_mismatch_rejected():
    line = encode_message(WatchRequest())
    envelope = json.loads(line)
    envelope["v"] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError, match="protocol version"):
        decode_request(json.dumps(envelope).encode())


def test_unknown_kind_and_malformed_lines_rejected():
    with pytest.raises(ProtocolError, match="unknown message kind"):
        decode_request(json.dumps({"kind": "nope", "v": 1}).encode())
    with pytest.raises(ProtocolError):
        decode_request(b"this is not json\n")
    with pytest.raises(ProtocolError):
        decode_request(b"[1, 2, 3]\n")


def test_request_and_response_registries_are_disjoint_views():
    line = encode_message(ErrorReply("queue_full", "full", {"depth": 4}))
    response, _ = decode_response(line)
    assert isinstance(response, ErrorReply)
    assert response.details == {"depth": 4}
    with pytest.raises(ProtocolError):  # responses are not requests
        decode_request(line)

"""Property-based tests of the algebraic number ring (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.algebra import SQRT2, AlgebraicComplex

coefficients = st.integers(min_value=-50, max_value=50)
exponents = st.integers(min_value=0, max_value=8)


@st.composite
def algebraic_values(draw):
    return AlgebraicComplex(draw(coefficients), draw(coefficients),
                            draw(coefficients), draw(coefficients), draw(exponents))


def close(left: complex, right: complex) -> bool:
    return abs(left - right) <= 1e-9 * max(1.0, abs(left), abs(right))


@settings(max_examples=150, deadline=None)
@given(algebraic_values(), algebraic_values())
def test_addition_commutes_and_matches_floats(left, right):
    total = left + right
    assert total == right + left
    assert close(total.to_complex(), left.to_complex() + right.to_complex())


@settings(max_examples=150, deadline=None)
@given(algebraic_values(), algebraic_values(), algebraic_values())
def test_ring_axioms(a, b, c):
    # Associativity.
    assert (a + b) + c == a + (b + c)
    assert (a * b) * c == a * (b * c)
    # Distributivity.
    assert a * (b + c) == a * b + a * c
    # Identities.
    assert a + AlgebraicComplex.zero() == a
    assert a * AlgebraicComplex.one() == a
    assert a * AlgebraicComplex.zero() == AlgebraicComplex.zero()


@settings(max_examples=150, deadline=None)
@given(algebraic_values(), algebraic_values())
def test_multiplication_matches_floats(left, right):
    assert close((left * right).to_complex(), left.to_complex() * right.to_complex())


@settings(max_examples=150, deadline=None)
@given(algebraic_values())
def test_canonical_form_is_stable(value):
    # Re-canonicalising the canonical coefficients changes nothing.
    again = AlgebraicComplex(*value.coefficients())
    assert again == value
    assert again.coefficients() == value.coefficients()


@settings(max_examples=150, deadline=None)
@given(algebraic_values())
def test_abs_squared_consistency(value):
    x, y, k = value.abs_squared_exact()
    expected = abs(value.to_complex()) ** 2
    assert math.isclose((x + y * SQRT2) / 2 ** k, expected,
                        rel_tol=1e-9, abs_tol=1e-9)
    assert value.abs_squared() >= 0.0


@settings(max_examples=150, deadline=None)
@given(algebraic_values())
def test_conjugate_is_involution_and_norm(value):
    assert value.conjugate().conjugate() == value
    product = value * value.conjugate()
    # v * conj(v) is real and equals |v|^2.
    assert abs(product.to_complex().imag) <= 1e-9
    assert math.isclose(product.to_complex().real, value.abs_squared(),
                        rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=150, deadline=None)
@given(algebraic_values(), st.integers(min_value=0, max_value=6))
def test_sqrt2_scaling_round_trip(value, count):
    scaled = value.divided_by_sqrt2(count)
    recovered = scaled
    for _ in range(count):
        recovered = recovered * AlgebraicComplex.sqrt2_power(1)
    assert recovered == value


@settings(max_examples=100, deadline=None)
@given(algebraic_values())
def test_equality_implies_same_float(value):
    duplicate = AlgebraicComplex(*value.coefficients())
    assert duplicate == value
    assert close(duplicate.to_complex(), value.to_complex())

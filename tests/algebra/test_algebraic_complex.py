"""Unit tests for the exact algebraic complex number representation."""

from __future__ import annotations

import cmath
import math
from fractions import Fraction

import pytest

from repro.algebra import OMEGA, SQRT2, AlgebraicComplex


def close(left: complex, right: complex, tol: float = 1e-12) -> bool:
    return abs(left - right) <= tol


class TestConstructors:
    def test_zero_and_one(self):
        assert AlgebraicComplex.zero().is_zero()
        assert AlgebraicComplex.one().to_complex() == 1
        assert not AlgebraicComplex.one().is_zero()

    def test_from_int(self):
        assert AlgebraicComplex.from_int(-7).to_complex() == -7
        assert AlgebraicComplex.from_int(0).is_zero()

    @pytest.mark.parametrize("power", range(-8, 17))
    def test_omega_power_matches_float(self, power):
        exact = AlgebraicComplex.omega_power(power)
        assert close(exact.to_complex(), OMEGA ** power)

    def test_omega_powers_cycle_with_period_eight(self):
        for power in range(8):
            assert AlgebraicComplex.omega_power(power) == AlgebraicComplex.omega_power(power + 8)

    @pytest.mark.parametrize("exponent", range(-4, 5))
    def test_sqrt2_power(self, exponent):
        exact = AlgebraicComplex.sqrt2_power(exponent)
        assert close(exact.to_complex(), SQRT2 ** exponent)

    def test_imaginary_unit(self):
        assert close(AlgebraicComplex.imaginary_unit().to_complex(), 1j)
        assert AlgebraicComplex.imaginary_unit() == AlgebraicComplex.omega_power(2)


class TestCanonicalisation:
    def test_zero_is_normalised(self):
        assert AlgebraicComplex(0, 0, 0, 0, 17) == AlgebraicComplex.zero()
        assert AlgebraicComplex(0, 0, 0, 0, 17).k == 0

    def test_common_factor_of_two_reduces_k(self):
        # 2/sqrt(2)^2 == 1.
        value = AlgebraicComplex(0, 0, 0, 2, 2)
        assert value == AlgebraicComplex.one()
        assert value.coefficients() == (0, 0, 0, 1, 0)

    def test_sqrt2_factor_reduces_k(self):
        # (w - w^3) / sqrt(2) == 1.
        value = AlgebraicComplex(-1, 0, 1, 0, 1)
        assert value == AlgebraicComplex.one()

    def test_irreducible_representation_kept(self):
        value = AlgebraicComplex(0, 0, 0, 1, 1)  # 1/sqrt(2)
        assert value.coefficients() == (0, 0, 0, 1, 1)

    def test_equality_and_hash_are_structural_on_canonical_form(self):
        left = AlgebraicComplex(0, 0, 0, 2, 2)
        right = AlgebraicComplex.one()
        assert left == right
        assert hash(left) == hash(right)


class TestArithmetic:
    values = [
        AlgebraicComplex.zero(),
        AlgebraicComplex.one(),
        AlgebraicComplex.from_int(-3),
        AlgebraicComplex.omega_power(1),
        AlgebraicComplex.omega_power(3),
        AlgebraicComplex(1, -2, 3, -4, 0),
        AlgebraicComplex(1, 0, 1, 1, 3),
        AlgebraicComplex(0, 5, 0, -5, 2),
    ]

    @pytest.mark.parametrize("left", values)
    @pytest.mark.parametrize("right", values)
    def test_addition_matches_floats(self, left, right):
        assert close((left + right).to_complex(), left.to_complex() + right.to_complex())

    @pytest.mark.parametrize("left", values)
    @pytest.mark.parametrize("right", values)
    def test_subtraction_matches_floats(self, left, right):
        assert close((left - right).to_complex(), left.to_complex() - right.to_complex())

    @pytest.mark.parametrize("left", values)
    @pytest.mark.parametrize("right", values)
    def test_multiplication_matches_floats(self, left, right):
        assert close((left * right).to_complex(), left.to_complex() * right.to_complex())

    @pytest.mark.parametrize("value", values)
    def test_negation(self, value):
        assert close((-value).to_complex(), -value.to_complex())
        assert (value + (-value)).is_zero()

    @pytest.mark.parametrize("value", values)
    def test_conjugate(self, value):
        assert close(value.conjugate().to_complex(), value.to_complex().conjugate())

    @pytest.mark.parametrize("value", values)
    def test_divided_by_sqrt2(self, value):
        halved = value.divided_by_sqrt2()
        assert close(halved.to_complex(), value.to_complex() / SQRT2)
        assert close(value.divided_by_sqrt2(4).to_complex(), value.to_complex() / 4)

    def test_integer_multiplication(self):
        value = AlgebraicComplex(1, 2, 3, 4, 1)
        assert (3 * value) == (value * 3)
        assert close((3 * value).to_complex(), 3 * value.to_complex())

    def test_omega_multiplication_is_rotation(self):
        # Multiplying by w eight times returns the original value.
        value = AlgebraicComplex(2, -1, 0, 5, 3)
        rotated = value
        for _ in range(8):
            rotated = rotated * AlgebraicComplex.omega_power(1)
        assert rotated == value


class TestMagnitudes:
    @pytest.mark.parametrize("value", TestArithmetic.values)
    def test_abs_squared_matches_float(self, value):
        assert math.isclose(value.abs_squared(), abs(value.to_complex()) ** 2,
                            rel_tol=1e-12, abs_tol=1e-12)

    @pytest.mark.parametrize("value", TestArithmetic.values)
    def test_abs_squared_exact_consistency(self, value):
        x, y, k = value.abs_squared_exact()
        assert math.isclose((x + y * SQRT2) / 2 ** k, value.abs_squared(),
                            rel_tol=1e-12, abs_tol=1e-12)

    def test_abs_squared_fraction_when_rational(self):
        half = AlgebraicComplex(0, 0, 0, 1, 1)   # 1/sqrt(2)
        assert half.abs_squared_fraction() == Fraction(1, 2)

    def test_abs_squared_fraction_rejects_irrational(self):
        value = AlgebraicComplex(0, 0, 1, 1, 0)  # 1 + w
        with pytest.raises(ValueError):
            value.abs_squared_fraction()


class TestDunder:
    def test_equality_with_python_numbers(self):
        assert AlgebraicComplex.one() == 1
        assert AlgebraicComplex.imaginary_unit() == 1j
        assert AlgebraicComplex(0, 0, 0, 1, 2) == 0.5

    def test_repr_and_str(self):
        value = AlgebraicComplex(1, 0, 0, 0, 3)
        assert "AlgebraicComplex" in repr(value)
        text = str(value)
        assert "w^3" in text and "sqrt(2)^3" in text
        assert str(AlgebraicComplex.zero()) == "0"
        assert str(AlgebraicComplex.one()) == "1"

    def test_unsupported_operand(self):
        with pytest.raises(TypeError):
            _ = AlgebraicComplex.one() + 1.5  # floats are not exact operands

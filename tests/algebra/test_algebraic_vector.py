"""Unit tests for the dense exact state vector (the exact oracle)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra import AlgebraicComplex, AlgebraicVector
from repro.circuit.gates import GateKind, gate_matrix, gate_matrix_exact


class TestConstruction:
    def test_basis_state(self):
        state = AlgebraicVector.basis_state(3, 5)
        assert len(state) == 8
        for index in range(8):
            if index == 5:
                assert state[index] == AlgebraicComplex.one()
            else:
                assert state[index].is_zero()

    def test_basis_state_out_of_range(self):
        with pytest.raises(ValueError):
            AlgebraicVector.basis_state(2, 4)

    def test_wrong_amplitude_count_rejected(self):
        with pytest.raises(ValueError):
            AlgebraicVector(2, [AlgebraicComplex.one()] * 3)


class TestGateApplication:
    single_qubit_kinds = [
        GateKind.X, GateKind.Y, GateKind.Z, GateKind.H, GateKind.S,
        GateKind.SDG, GateKind.T, GateKind.TDG, GateKind.RX_PI_2, GateKind.RY_PI_2,
    ]

    @pytest.mark.parametrize("kind", single_qubit_kinds)
    @pytest.mark.parametrize("target", [0, 1])
    def test_single_qubit_gates_match_numpy(self, kind, target):
        # Start from a non-trivial exact state: H on both qubits, T on qubit 0.
        state = AlgebraicVector.basis_state(2, 0)
        h = gate_matrix_exact(GateKind.H)
        t = gate_matrix_exact(GateKind.T)
        state.apply_single_qubit(h, 0)
        state.apply_single_qubit(h, 1)
        state.apply_single_qubit(t, 0)
        reference = state.to_numpy()

        state.apply_single_qubit(gate_matrix_exact(kind), target)
        matrix = gate_matrix(kind)
        full = np.kron(matrix, np.eye(2)) if target == 0 else np.kron(np.eye(2), matrix)
        expected = full @ reference
        assert np.max(np.abs(state.to_numpy() - expected)) < 1e-12

    def test_controlled_gate(self):
        state = AlgebraicVector.basis_state(2, 0)
        h = gate_matrix_exact(GateKind.H)
        x = gate_matrix_exact(GateKind.X)
        state.apply_single_qubit(h, 0)
        state.apply_controlled(x, [0], 1)
        # Bell state.
        amplitudes = state.to_numpy()
        assert np.isclose(amplitudes[0], 1 / np.sqrt(2))
        assert np.isclose(amplitudes[3], 1 / np.sqrt(2))
        assert np.isclose(abs(amplitudes[1]) + abs(amplitudes[2]), 0.0)

    def test_swap(self):
        state = AlgebraicVector.basis_state(2, 0b10)  # qubit 0 = 1, qubit 1 = 0
        state.apply_swap([], 0, 1)
        assert state.probability_of_outcome(0b01) == pytest.approx(1.0)

    def test_controlled_swap_requires_control(self):
        state = AlgebraicVector.basis_state(3, 0b010)  # control qubit 0 is 0
        state.apply_swap([0], 1, 2)
        assert state.probability_of_outcome(0b010) == pytest.approx(1.0)
        state = AlgebraicVector.basis_state(3, 0b110)  # control qubit 0 is 1
        state.apply_swap([0], 1, 2)
        assert state.probability_of_outcome(0b101) == pytest.approx(1.0)

    def test_target_out_of_range(self):
        state = AlgebraicVector.basis_state(1, 0)
        with pytest.raises(ValueError):
            state.apply_single_qubit(gate_matrix_exact(GateKind.X), 3)


class TestQueries:
    def test_norm_is_preserved(self):
        state = AlgebraicVector.basis_state(3, 0)
        h = gate_matrix_exact(GateKind.H)
        t = gate_matrix_exact(GateKind.T)
        for qubit in range(3):
            state.apply_single_qubit(h, qubit)
            state.apply_single_qubit(t, qubit)
        assert state.norm_squared() == pytest.approx(1.0, abs=1e-12)

    def test_equality(self):
        left = AlgebraicVector.basis_state(2, 1)
        right = AlgebraicVector.basis_state(2, 1)
        other = AlgebraicVector.basis_state(2, 2)
        assert left == right
        assert left != other

    def test_repr(self):
        assert "num_qubits=2" in repr(AlgebraicVector.basis_state(2, 0))

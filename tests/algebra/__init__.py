"""Test package."""

"""Smoke tests executing the shipped examples.

Examples are part of the public surface (deliverable (b)); these tests run
the cheap ones end-to-end so a regression in the API breaks the build rather
than silently breaking the documentation.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example file as a module without executing ``main()``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 3

    def test_quickstart(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "Exact amplitudes" in output
        assert "Pr[|000>]" in output

    def test_exact_vs_float(self, capsys):
        module = load_example("exact_vs_float.py")
        module.drift_table()
        module.t_gate_period()
        output = capsys.readouterr().out
        assert "T^8" in output

    def test_revlib_superposition_classical_path(self, capsys):
        module = load_example("revlib_superposition.py")
        module.classical_run()
        module.real_roundtrip()
        output = capsys.readouterr().out
        assert "5 + 9 = 14" in output
        assert ".real round-trip OK" in output

    def test_custom_engine(self, capsys):
        from repro.engines import unregister_engine

        module = load_example("custom_engine.py")
        try:
            module.main()
        finally:
            unregister_engine("sparse-dict")
        output = capsys.readouterr().out
        assert "sparse-dict on ghz10: status=ok" in output
        assert "P[all zeros]=0.500" in output
        assert "status=MO" in output

    def test_equivalence_checking(self, capsys):
        module = load_example("equivalence_checking.py")
        module.check("H X H == Z",
                     module.QuantumCircuit(1).h(0).x(0).h(0),
                     module.QuantumCircuit(1).z(0))
        output = capsys.readouterr().out
        assert "EQUIVALENT" in output

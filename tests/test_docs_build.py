"""The documentation build: coverage gate, link check, rendering.

Runs the real pipeline from ``scripts/build_docs.py`` (fallback renderer,
no MkDocs needed) so a missing docstring on the public API or a broken
internal docs link fails the tier-1 suite, not just the CI docs job.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def build_docs():
    spec = importlib.util.spec_from_file_location(
        "build_docs", REPO_ROOT / "scripts" / "build_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocstringCoverage:
    def test_public_api_fully_documented(self, build_docs):
        collector = build_docs.ApiCollector()
        collector.build()
        assert collector.warnings == []

    def test_gate_detects_missing_docstring(self, build_docs):
        import repro.engines.frontdoor as frontdoor

        original = frontdoor.run.__doc__
        frontdoor.run.__doc__ = None
        try:
            collector = build_docs.ApiCollector()
            collector.build()
            assert any("frontdoor.run" in warning
                       for warning in collector.warnings)
        finally:
            frontdoor.run.__doc__ = original

    def test_api_reference_covers_headline_symbols(self, build_docs):
        text = build_docs.ApiCollector().build()
        for symbol in ("class `Engine`", "class `Capabilities`",
                       "class `RunResult`", "class `BatchApplier`",
                       "`run(", "`run_sweep(", "`sample_by_descent(",
                       "`snap_probability(", "class `SliceSampler`"):
            assert symbol in text, symbol


class TestSitePages:
    def test_all_nav_pages_exist(self, build_docs):
        pages = build_docs.load_pages()
        expected = {filename for _, filename in build_docs.NAV}
        assert set(pages) | {"api.md"} == expected

    def test_internal_links_resolve(self, build_docs):
        pages = build_docs.load_pages()
        pages["api.md"] = build_docs.ApiCollector().build()
        assert build_docs.check_links(pages) == []

    def test_link_check_detects_breakage(self, build_docs):
        assert build_docs.check_links({"a.md": "see [b](missing.md)"})

    def test_mkdocs_nav_matches_fallback_nav(self, build_docs):
        """mkdocs.yml duplicates the NAV list; a page added to one but not
        the other silently vanishes from whichever renderer CI happens to
        take, so the two lists must stay in lockstep."""
        import re

        text = (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8")
        nav_block = text.split("nav:", 1)[1]
        entries = re.findall(r"-\s*(.+?):\s*(\S+\.md)", nav_block)
        assert [(title, page) for title, page in entries] == build_docs.NAV


class TestFallbackRenderer:
    def test_markdown_features_render(self, build_docs):
        rendered = build_docs.render_markdown(
            "# Title\n\npara with `code` and **bold** and "
            "[a link](index.md).\n\n"
            "```python\nx = 1 < 2\n```\n\n"
            "* item one\n* item two\n\n"
            "| a | b |\n| --- | --- |\n| 1 | 2 |\n")
        assert '<h1 id="title">Title</h1>' in rendered
        assert "<code>code</code>" in rendered
        assert "<strong>bold</strong>" in rendered
        assert '<a href="index.html">a link</a>' in rendered
        assert "x = 1 &lt; 2" in rendered
        assert rendered.count("<li>") == 2
        assert "<table>" in rendered and "<td>2</td>" in rendered

    def test_site_builds_end_to_end(self, build_docs, tmp_path):
        exit_code = build_docs.main(
            ["--no-mkdocs", "--site-dir", str(tmp_path / "site")])
        assert exit_code == 0
        built = {path.name for path in (tmp_path / "site").glob("*.html")}
        assert built == {filename[:-3] + ".html"
                        for _, filename in build_docs.NAV}
        api = (tmp_path / "site" / "api.html").read_text(encoding="utf-8")
        assert "class <code>RunResult</code>" in api

    def test_check_only_mode(self, build_docs, capsys):
        assert build_docs.main(["--check-only"]) == 0
        assert "docs gates ok" in capsys.readouterr().out


def test_main_fails_on_warning(build_docs, monkeypatch):
    import repro.engines.result as result_module

    original = result_module.RunResult.counts_bitstrings.__doc__
    monkeypatch.setattr(result_module.RunResult.counts_bitstrings,
                        "__doc__", None)
    try:
        assert build_docs.main(["--check-only"]) == 1
    finally:
        result_module.RunResult.counts_bitstrings.__doc__ = original

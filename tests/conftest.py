"""Shared fixtures and helpers for the test-suite.

The central helper is :func:`build_circuit_from_ops`, which turns a compact
op-list description into a :class:`QuantumCircuit`; property-based tests use
it to generate random circuits hypothesis can shrink meaningfully.

The module also hosts the canonical named circuit generators (:func:`ghz`,
:func:`layered`, :func:`clifford_mix`, :func:`universal_mix`) shared by the
engine, cache, substrate and chaos suites — one definition per shape, so a
"GHZ" or "random Clifford" circuit means the same thing everywhere.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import numpy as np
import pytest

from repro import QuantumCircuit


#: (mnemonic, number of qubits consumed) for the op-list mini-language.
OP_ARITY = {
    "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1, "t": 1, "tdg": 1,
    "rx": 1, "ry": 1,
    "cx": 2, "cz": 2, "swap": 2,
    "ccx": 3, "cswap": 3,
}


def build_circuit_from_ops(num_qubits: int, ops: Sequence[Tuple[str, Tuple[int, ...]]],
                           name: str = "ops_circuit") -> QuantumCircuit:
    """Build a circuit from ``(mnemonic, qubits)`` pairs."""
    circuit = QuantumCircuit(num_qubits, name=name)
    for mnemonic, qubits in ops:
        if mnemonic == "x":
            circuit.x(qubits[0])
        elif mnemonic == "y":
            circuit.y(qubits[0])
        elif mnemonic == "z":
            circuit.z(qubits[0])
        elif mnemonic == "h":
            circuit.h(qubits[0])
        elif mnemonic == "s":
            circuit.s(qubits[0])
        elif mnemonic == "sdg":
            circuit.sdg(qubits[0])
        elif mnemonic == "t":
            circuit.t(qubits[0])
        elif mnemonic == "tdg":
            circuit.tdg(qubits[0])
        elif mnemonic == "rx":
            circuit.rx_pi_2(qubits[0])
        elif mnemonic == "ry":
            circuit.ry_pi_2(qubits[0])
        elif mnemonic == "cx":
            circuit.cx(qubits[0], qubits[1])
        elif mnemonic == "cz":
            circuit.cz(qubits[0], qubits[1])
        elif mnemonic == "swap":
            circuit.swap(qubits[0], qubits[1])
        elif mnemonic == "ccx":
            circuit.ccx(list(qubits[:2]), qubits[2])
        elif mnemonic == "cswap":
            circuit.cswap([qubits[0]], qubits[1], qubits[2])
        else:
            raise ValueError(f"unknown op {mnemonic!r}")
    return circuit


def random_ops(num_qubits: int, num_gates: int, seed: int,
               mnemonics: Sequence[str] = tuple(OP_ARITY)) -> List[Tuple[str, Tuple[int, ...]]]:
    """A deterministic random op-list respecting each op's arity."""
    rng = random.Random(seed)
    ops: List[Tuple[str, Tuple[int, ...]]] = []
    usable = [m for m in mnemonics if OP_ARITY[m] <= num_qubits]
    for _ in range(num_gates):
        mnemonic = rng.choice(usable)
        qubits = tuple(rng.sample(range(num_qubits), OP_ARITY[mnemonic]))
        ops.append((mnemonic, qubits))
    return ops


def ghz(n: int = 3, name: str = None, measure: bool = False) -> QuantumCircuit:
    """The n-qubit GHZ preparation (H then a CX ladder).

    ``measure=True`` appends terminal measurement markers on every qubit —
    the sampling suites' convention; the cache and substrate suites use the
    bare unitary form.
    """
    circuit = QuantumCircuit(n, name=name or f"ghz{n}").h(0)
    for qubit in range(n - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit.measure_all() if measure else circuit


def layered(n: int = 4, layers: int = 2, name: str = "layered") -> QuantumCircuit:
    """Alternating H-wall / CX-ladder / T layers (the prefix-resume shape)."""
    circuit = QuantumCircuit(n, name=name)
    for _ in range(layers):
        for qubit in range(n):
            circuit.h(qubit)
        for qubit in range(n - 1):
            circuit.cx(qubit, qubit + 1)
        circuit.t(0)
    return circuit


def clifford_mix(n: int, seed: int, measure: bool = True) -> QuantumCircuit:
    """A random Clifford circuit of ``4 * n`` gates (deterministic from
    ``seed``), measured on every qubit by default."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(n, name=f"clifford{n}_s{seed}")
    for _ in range(4 * n):
        choice = rng.randrange(4)
        if choice == 0:
            circuit.h(rng.randrange(n))
        elif choice == 1:
            circuit.s(rng.randrange(n))
        elif choice == 2:
            circuit.x(rng.randrange(n))
        else:
            a = rng.randrange(n)
            b = rng.randrange(n - 1)
            circuit.cx(a, b if b < a else b + 1)
    return circuit.measure_all() if measure else circuit


def universal_mix(n: int, seed: int, measure: bool = True) -> QuantumCircuit:
    """A random Clifford+T circuit of ``3 * n`` gates (deterministic from
    ``seed``), measured on every qubit by default."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(n, name=f"universal{n}_s{seed}")
    for _ in range(3 * n):
        choice = rng.randrange(5)
        if choice == 0:
            circuit.h(rng.randrange(n))
        elif choice == 1:
            circuit.t(rng.randrange(n))
        elif choice == 2:
            circuit.s(rng.randrange(n))
        elif choice == 3:
            circuit.x(rng.randrange(n))
        else:
            a = rng.randrange(n)
            b = rng.randrange(n - 1)
            circuit.cx(a, b if b < a else b + 1)
    return circuit.measure_all() if measure else circuit


def assert_states_close(left: np.ndarray, right: np.ndarray, tol: float = 1e-9) -> None:
    """Assert two dense state vectors are element-wise close."""
    assert left.shape == right.shape
    assert np.max(np.abs(left - right)) < tol


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy RNG for tests that sample."""
    return np.random.default_rng(12345)

"""Property-based cross-engine tests (hypothesis).

The strongest integration property the repository can state: on any circuit
over the supported gate set, the three universal engines (dense statevector,
float-weighted QMDD, exact bit-sliced BDD) agree on the final state, and on
Clifford-only circuits the stabilizer engine agrees on every single-qubit
marginal.  Hypothesis drives circuit generation so failures shrink to small
witnesses.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.qmdd import QmddSimulator
from repro.baselines.stabilizer import StabilizerSimulator
from repro.baselines.statevector import StatevectorSimulator
from repro.core.simulator import BitSliceSimulator

from tests.conftest import OP_ARITY, build_circuit_from_ops

NUM_QUBITS = 3

CLIFFORD_OPS = ("x", "y", "z", "h", "s", "sdg", "rx", "ry", "cx", "cz", "swap")


@st.composite
def op_lists(draw, mnemonics=tuple(OP_ARITY), max_size=16):
    size = draw(st.integers(min_value=0, max_value=max_size))
    ops = []
    for _ in range(size):
        mnemonic = draw(st.sampled_from([m for m in mnemonics
                                         if OP_ARITY[m] <= NUM_QUBITS]))
        qubits = draw(st.permutations(list(range(NUM_QUBITS))))
        ops.append((mnemonic, tuple(qubits[:OP_ARITY[mnemonic]])))
    return ops


@settings(max_examples=30, deadline=None)
@given(op_lists())
def test_three_universal_engines_agree(ops):
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    dense = StatevectorSimulator.simulate(circuit).state
    exact = BitSliceSimulator.simulate(circuit).to_numpy()
    qmdd = QmddSimulator.simulate(circuit).to_numpy()
    assert np.max(np.abs(exact - dense)) < 1e-9
    assert np.max(np.abs(qmdd - dense)) < 1e-7


@settings(max_examples=30, deadline=None)
@given(op_lists(mnemonics=CLIFFORD_OPS))
def test_stabilizer_marginals_agree_on_clifford_circuits(ops):
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    dense = StatevectorSimulator.simulate(circuit)
    tableau = StabilizerSimulator.simulate(circuit)
    for qubit in range(NUM_QUBITS):
        expected = dense.probability_of_qubit(qubit, 0)
        assert abs(tableau.probability_of_qubit(qubit, 0) - expected) < 1e-9


@settings(max_examples=25, deadline=None)
@given(op_lists(), st.integers(min_value=0, max_value=NUM_QUBITS - 1),
       st.integers(min_value=0, max_value=1))
def test_collapse_agrees_between_exact_and_dense(ops, qubit, outcome):
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    dense = StatevectorSimulator.simulate(circuit)
    exact = BitSliceSimulator.simulate(circuit)
    probability = dense.probability_of_qubit(qubit, outcome)
    if probability < 1e-9:
        return  # collapsing onto a zero-probability branch is rejected by both
    dense.measure_qubit(qubit, forced_outcome=outcome)
    exact.measure_qubit(qubit, forced_outcome=outcome)
    assert np.max(np.abs(exact.to_numpy() - dense.state)) < 1e-9


@settings(max_examples=25, deadline=None)
@given(op_lists())
def test_qmdd_norm_stays_close_at_default_tolerance(ops):
    """At the default (tight) tolerance the float-weighted engine's norm
    stays numerically close to 1 on short circuits — drift only becomes a
    failure mode at depth, which the accuracy benchmarks quantify."""
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    simulator = QmddSimulator.simulate(circuit)
    assert abs(simulator.norm_squared() - 1.0) < 1e-6

"""Golden post-circuit BDD shapes, pinned across every substrate backend.

Each fixture under ``tests/fixtures/bdd_shapes/`` stores the canonical
:func:`repro.bdd.dag_export` serialisation of the bit-sliced state after a
named circuit (GHZ ladder, superposed Cuccaro adder, QAOA-style ansatz) plus
the headline metadata (``r``, ``k``, shared node count).  The tests replay
each circuit on every available backend and demand the exported shape match
the golden file **exactly** — a structural regression pin far stronger than
the ad-hoc inline node counts it replaces, and a second, fixture-anchored
witness of the substrate interchangeability contract (the differential
harness in ``tests/substrate/`` is the first).

Regenerating after an intentional representation change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/bdd/test_golden_shapes.py

The regeneration path refuses to run under CI (fixtures are inputs there).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import QuantumCircuit
from repro.bdd import ArrayBddManager, BddManager, count_nodes, dag_export
from repro.core.simulator import BitSliceSimulator
from repro.workloads.revlib import h_augment, ripple_carry_adder
from tests.conftest import ghz

try:
    from repro.bdd._compiled import CompiledBddManager
except ImportError:  # pragma: no cover - numpy-less environments
    CompiledBddManager = None

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "bdd_shapes"

BACKENDS = [("dict", BddManager), ("array", ArrayBddManager)]
if CompiledBddManager is not None:
    BACKENDS.append(("compiled", CompiledBddManager))


def qaoa_like(n: int = 6, layers: int = 2) -> QuantumCircuit:
    """A QAOA-style ansatz on a ring: H wall, then alternating ZZ-cost
    layers (CX - T - CX conjugation) and RX(pi/2) mixer walls.  Exactly
    representable in the simulator's algebraic gate set, deterministic, and
    structurally rich (phases spread over every slice)."""
    circuit = QuantumCircuit(n, name=f"qaoa{n}")
    for qubit in range(n):
        circuit.h(qubit)
    for _ in range(layers):
        for qubit in range(n):
            partner = (qubit + 1) % n
            circuit.cx(qubit, partner)
            circuit.t(partner)
            circuit.cx(qubit, partner)
        for qubit in range(n):
            circuit.rx_pi_2(qubit)
    return circuit


def superposed_adder(num_bits: int = 3) -> QuantumCircuit:
    """The paper's Table IV "modified" Cuccaro adder: H on every data input,
    so the adder processes the full input superposition."""
    circuit, constants = ripple_carry_adder(num_bits)
    return h_augment(circuit, constants)


CIRCUITS = {
    "ghz8": lambda: ghz(8),
    "adder3": lambda: superposed_adder(3),
    "qaoa6": lambda: qaoa_like(6),
}

#: Raw BDD functions pinned the same way (name -> (num_vars, builder)).
#: ``parity3`` anchors the node-count expectations that used to live inline
#: in ``test_manager.py``.
FUNCTIONS = {
    "parity3": (3, lambda m: [m.var(0) ^ m.var(1) ^ m.var(2)]),
}


def compute_shape(circuit: QuantumCircuit, factory) -> dict:
    """Simulate ``circuit`` on a ``factory`` manager and export the shape."""
    simulator = BitSliceSimulator(circuit.num_qubits,
                                  manager=factory(circuit.num_qubits))
    simulator.run(circuit)
    slices = simulator.state.all_slices()
    return {
        "circuit": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_gates": circuit.num_gates,
        "r": simulator.state.r,
        "k": simulator.state.k,
        "total_nodes": count_nodes(slices),
        "dag": dag_export(slices),
    }


def compute_function_shape(name: str, factory) -> dict:
    """Build a pinned raw-BDD function on a ``factory`` manager and export
    its shape."""
    num_vars, build = FUNCTIONS[name]
    manager = factory(num_vars)
    roots = build(manager)
    return {
        "function": name,
        "num_vars": num_vars,
        "total_nodes": count_nodes(roots),
        "dag": dag_export(roots),
    }


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def load_golden(name: str) -> dict:
    with open(golden_path(name), encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.skipif(os.environ.get("REPRO_REGEN_GOLDEN") != "1",
                    reason="set REPRO_REGEN_GOLDEN=1 to rewrite fixtures")
def test_regenerate_golden_fixtures():
    assert not os.environ.get("CI"), "golden fixtures are inputs under CI"
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    shapes = {name: compute_shape(build(), BddManager)
              for name, build in CIRCUITS.items()}
    shapes.update({name: compute_function_shape(name, BddManager)
                   for name in FUNCTIONS})
    for name, shape in shapes.items():
        with open(golden_path(name), "w", encoding="utf-8") as handle:
            json.dump(shape, handle, indent=1, sort_keys=True)
            handle.write("\n")


@pytest.mark.parametrize("backend,factory", BACKENDS,
                         ids=[name for name, _ in BACKENDS])
@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_shape_matches_golden(name, backend, factory):
    golden = load_golden(name)
    assert compute_shape(CIRCUITS[name](), factory) == golden


@pytest.mark.parametrize("backend,factory", BACKENDS,
                         ids=[name for name, _ in BACKENDS])
@pytest.mark.parametrize("name", sorted(FUNCTIONS))
def test_function_shape_matches_golden(name, backend, factory):
    golden = load_golden(name)
    assert compute_function_shape(name, factory) == golden


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_golden_fixture_is_well_formed(name):
    """The fixture itself obeys the export invariants: postorder child
    references (always backwards), reduced nodes (low != high), and a node
    count consistent with the recorded total."""
    golden = load_golden(name)
    nodes = golden["dag"]["nodes"]
    for index, (var, low, high) in enumerate(nodes):
        this_id = index + 2
        assert 0 <= low < this_id and 0 <= high < this_id
        assert low != high
        assert 0 <= var < golden["num_qubits"]
    assert golden["total_nodes"] == len(nodes) + 2
    assert all(0 <= root < len(nodes) + 2 for root in golden["dag"]["roots"])

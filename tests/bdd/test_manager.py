"""Unit tests for the BDD manager: node construction and core operations.

Every operation is checked against a brute-force truth-table oracle on small
variable counts, which is the strongest possible functional specification for
ROBDDs.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

import pytest

from repro.bdd import BddManager
from repro.bdd.analysis import dag_export, truth_table
from repro.bdd.manager import FALSE, TRUE

GOLDEN_SHAPES = Path(__file__).resolve().parent.parent / "fixtures" / "bdd_shapes"


def all_assignments(variables):
    """All assignments over ``variables`` as dicts."""
    for values in itertools.product([False, True], repeat=len(variables)):
        yield dict(zip(variables, values))


class TestTerminalsAndVariables:
    def test_constants_are_distinct_terminals(self):
        manager = BddManager(2)
        assert manager.false.is_false()
        assert manager.true.is_true()
        assert manager.false.node == FALSE
        assert manager.true.node == TRUE
        assert manager.false != manager.true

    def test_new_var_extends_order(self):
        manager = BddManager(0)
        first = manager.new_var()
        second = manager.new_var()
        assert (first, second) == (0, 1)
        assert manager.num_vars == 2
        assert manager.current_order() == [0, 1]

    def test_var_and_nvar_are_complements(self):
        manager = BddManager(3)
        x = manager.var(1)
        not_x = manager.nvar(1)
        assert (~x) == not_x
        assert (x | not_x).is_true()
        assert (x & not_x).is_false()

    def test_literal_respects_phase(self):
        manager = BddManager(2)
        assert manager.literal(0, True) == manager.var(0)
        assert manager.literal(0, False) == manager.nvar(0)

    def test_unknown_variable_rejected(self):
        manager = BddManager(2)
        with pytest.raises(ValueError):
            manager.var(5)
        with pytest.raises(ValueError):
            manager.nvar(-1)

    def test_reduction_rule_no_redundant_nodes(self):
        manager = BddManager(2)
        x = manager.var(0)
        # x AND x == x: no new node should be needed.
        assert (x & x) == x
        # ITE(x, true, true) collapses to the terminal.
        assert x.ite(manager.true, manager.true).is_true()


class TestBooleanOperations:
    @pytest.mark.parametrize("num_vars", [1, 2, 3, 4])
    def test_and_or_xor_against_truth_tables(self, num_vars):
        manager = BddManager(num_vars)
        variables = list(range(num_vars))
        # f = x0 AND x1 ... alternating; g = parity.
        f = manager.true
        for index, var in enumerate(variables):
            literal = manager.var(var) if index % 2 == 0 else manager.nvar(var)
            f = f & literal
        g = manager.false
        for var in variables:
            g = g ^ manager.var(var)
        for assignment in all_assignments(variables):
            f_expected = all((assignment[v] if i % 2 == 0 else not assignment[v])
                             for i, v in enumerate(variables))
            g_expected = sum(assignment[v] for v in variables) % 2 == 1
            assert f.evaluate(assignment) == f_expected
            assert g.evaluate(assignment) == g_expected
            assert (f & g).evaluate(assignment) == (f_expected and g_expected)
            assert (f | g).evaluate(assignment) == (f_expected or g_expected)
            assert (f ^ g).evaluate(assignment) == (f_expected != g_expected)
            assert (~f).evaluate(assignment) == (not f_expected)

    def test_ite_matches_definition(self):
        manager = BddManager(3)
        f, g, h = manager.var(0), manager.var(1) & manager.var(2), manager.nvar(2)
        ite = f.ite(g, h)
        for assignment in all_assignments([0, 1, 2]):
            expected = g.evaluate(assignment) if f.evaluate(assignment) else h.evaluate(assignment)
            assert ite.evaluate(assignment) == expected

    def test_implies_and_equiv(self):
        manager = BddManager(2)
        x, y = manager.var(0), manager.var(1)
        implies = x.implies(y)
        equiv = x.equiv(y)
        for assignment in all_assignments([0, 1]):
            assert implies.evaluate(assignment) == ((not assignment[0]) or assignment[1])
            assert equiv.evaluate(assignment) == (assignment[0] == assignment[1])

    def test_de_morgan(self):
        manager = BddManager(3)
        f = manager.var(0) & manager.var(1)
        g = manager.var(1) | manager.nvar(2)
        assert (~(f & g)) == ((~f) | (~g))
        assert (~(f | g)) == ((~f) & (~g))

    def test_operations_across_managers_rejected(self):
        left = BddManager(1)
        right = BddManager(1)
        with pytest.raises(ValueError):
            _ = left.var(0) & right.var(0)

    def test_bool_conversion_is_an_error(self):
        manager = BddManager(1)
        with pytest.raises(TypeError):
            bool(manager.var(0))


class TestCofactorAndQuantification:
    def test_cofactor_fixes_variable(self):
        manager = BddManager(3)
        f = (manager.var(0) & manager.var(1)) | manager.var(2)
        positive = f.cofactor(0, True)
        negative = f.cofactor(0, False)
        for assignment in all_assignments([1, 2]):
            full_pos = {**assignment, 0: True}
            full_neg = {**assignment, 0: False}
            assert positive.evaluate(assignment) == f.evaluate(full_pos)
            assert negative.evaluate(assignment) == f.evaluate(full_neg)

    def test_shannon_expansion(self):
        manager = BddManager(3)
        f = (manager.var(0) ^ manager.var(1)) | (manager.var(1) & manager.var(2))
        x0 = manager.var(0)
        rebuilt = (x0 & f.cofactor(0, True)) | ((~x0) & f.cofactor(0, False))
        assert rebuilt == f

    def test_cofactor_cube(self):
        manager = BddManager(4)
        f = (manager.var(0) & manager.var(1)) ^ (manager.var(2) | manager.var(3))
        cofactored = f.cofactor_cube([(0, True), (2, False)])
        assert cofactored == f.cofactor(0, True).cofactor(2, False)

    def test_exists_and_forall(self):
        manager = BddManager(3)
        f = manager.var(0) & (manager.var(1) | manager.var(2))
        exists = f.exists([1])
        forall = f.forall([1])
        for assignment in all_assignments([0, 2]):
            branch_true = f.evaluate({**assignment, 1: True})
            branch_false = f.evaluate({**assignment, 1: False})
            assert exists.evaluate(assignment) == (branch_true or branch_false)
            assert forall.evaluate(assignment) == (branch_true and branch_false)

    def test_compose_substitutes_function(self):
        manager = BddManager(3)
        f = manager.var(0) ^ manager.var(1)
        g = manager.var(1) & manager.var(2)
        composed = f.compose(0, g)
        for assignment in all_assignments([0, 1, 2]):
            expected = g.evaluate(assignment) != assignment[1]
            assert composed.evaluate(assignment) == expected

    def test_cofactor_of_absent_variable_is_identity(self):
        manager = BddManager(3)
        f = manager.var(0) & manager.var(1)
        assert f.cofactor(2, True) == f
        assert f.cofactor(2, False) == f


class TestQueries:
    def test_support(self):
        manager = BddManager(5)
        f = (manager.var(1) & manager.var(3)) | manager.nvar(4)
        assert f.support() == [1, 3, 4]
        assert manager.true.support() == []

    def test_satcount(self):
        manager = BddManager(4)
        x0, x1 = manager.var(0), manager.var(1)
        assert manager.true.satcount(4) == 16
        assert manager.false.satcount(4) == 0
        assert x0.satcount(4) == 8
        assert (x0 & x1).satcount(4) == 4
        assert (x0 | x1).satcount(4) == 12
        assert (x0 ^ x1).satcount(4) == 8

    def test_satcount_defaults_to_manager_width(self):
        manager = BddManager(3)
        assert manager.var(0).satcount() == 4

    def test_iter_satisfying_matches_satcount(self):
        manager = BddManager(3)
        f = (manager.var(0) & manager.nvar(1)) | manager.var(2)
        assignments = list(f.iter_satisfying([0, 1, 2]))
        assert len(assignments) == f.satcount(3)
        for assignment in assignments:
            assert f.evaluate(assignment)

    def test_evaluate_requires_support_assignment(self):
        manager = BddManager(2)
        f = manager.var(0) & manager.var(1)
        with pytest.raises(KeyError):
            f.evaluate({0: True})

    def test_count_nodes(self):
        manager = BddManager(3)
        x0, x1, x2 = (manager.var(i) for i in range(3))
        # Parity of 3 variables: exact size and structure are pinned by the
        # golden fixture shared with tests/bdd/test_golden_shapes.py.
        parity = x0 ^ x1 ^ x2
        with open(GOLDEN_SHAPES / "parity3.json", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert parity.count_nodes() == golden["total_nodes"]
        assert dag_export([parity]) == golden["dag"]
        assert manager.true.count_nodes() == 1

    def test_top_var_and_children(self):
        manager = BddManager(2)
        f = manager.var(0) & manager.var(1)
        assert f.top_var == 0
        assert f.low.is_false()
        assert f.high == manager.var(1)
        with pytest.raises(ValueError):
            _ = manager.true.low


class TestGarbageCollection:
    def test_collect_reclaims_unreachable_nodes(self):
        manager = BddManager(8)
        keep = manager.var(0) & manager.var(1)
        for seed in range(20):
            # Build temporaries and drop them immediately.
            temporary = manager.var(seed % 8) ^ manager.var((seed + 3) % 8)
            temporary = temporary & manager.var((seed + 5) % 8)
            del temporary
        before = manager.num_live_nodes()
        freed = manager.garbage_collect()
        after = manager.num_live_nodes()
        assert freed >= 0
        assert after <= before
        # The kept function must still evaluate correctly after collection.
        assert keep.evaluate({0: True, 1: True}) is True
        assert keep.evaluate({0: True, 1: False}) is False

    def test_freed_slots_are_reused(self):
        manager = BddManager(4)
        temporary = manager.var(0) ^ manager.var(1) ^ manager.var(2)
        del temporary
        manager.garbage_collect()
        size_after_gc = len(manager._var)
        _ = manager.var(0) ^ manager.var(3)
        # Rebuilding a similar-size function should not grow the arrays much
        # beyond their previous length because freed slots are recycled.
        assert len(manager._var) <= size_after_gc + 2

    def test_clear_cache_is_safe(self):
        manager = BddManager(3)
        f = manager.var(0) & manager.var(1)
        manager.clear_cache()
        g = manager.var(0) & manager.var(1)
        assert f == g


class TestTruthTableHelper:
    def test_truth_table_indexing_convention(self):
        manager = BddManager(2)
        # f = x0 (most significant bit of the index).
        table = truth_table(manager.var(0), [0, 1])
        assert table == [False, False, True, True]
        table = truth_table(manager.var(1), [0, 1])
        assert table == [False, True, False, True]

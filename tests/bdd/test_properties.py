"""Property-based tests of the BDD substrate (hypothesis).

Random Boolean expressions are generated as ASTs, built both as BDDs and as
plain Python closures; the two must agree on every assignment.  Further
properties exercise canonicity (semantic equality == handle equality),
Shannon expansion and quantifier identities.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager

NUM_VARS = 4


# --------------------------------------------------------------------------- #
# random Boolean expression ASTs
# --------------------------------------------------------------------------- #
def expressions(max_depth: int = 4):
    """Hypothesis strategy producing Boolean expression ASTs."""
    leaves = st.one_of(
        st.tuples(st.just("var"), st.integers(min_value=0, max_value=NUM_VARS - 1)),
        st.just(("const", True)),
        st.just(("const", False)),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
            st.tuples(st.just("ite"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=2 ** max_depth)


def build_bdd(manager: BddManager, expression):
    kind = expression[0]
    if kind == "var":
        return manager.var(expression[1])
    if kind == "const":
        return manager.true if expression[1] else manager.false
    if kind == "not":
        return ~build_bdd(manager, expression[1])
    if kind == "and":
        return build_bdd(manager, expression[1]) & build_bdd(manager, expression[2])
    if kind == "or":
        return build_bdd(manager, expression[1]) | build_bdd(manager, expression[2])
    if kind == "xor":
        return build_bdd(manager, expression[1]) ^ build_bdd(manager, expression[2])
    if kind == "ite":
        return build_bdd(manager, expression[1]).ite(
            build_bdd(manager, expression[2]), build_bdd(manager, expression[3]))
    raise ValueError(kind)


def evaluate_ast(expression, assignment):
    kind = expression[0]
    if kind == "var":
        return assignment[expression[1]]
    if kind == "const":
        return expression[1]
    if kind == "not":
        return not evaluate_ast(expression[1], assignment)
    if kind == "and":
        return evaluate_ast(expression[1], assignment) and evaluate_ast(expression[2], assignment)
    if kind == "or":
        return evaluate_ast(expression[1], assignment) or evaluate_ast(expression[2], assignment)
    if kind == "xor":
        return evaluate_ast(expression[1], assignment) != evaluate_ast(expression[2], assignment)
    if kind == "ite":
        condition = evaluate_ast(expression[1], assignment)
        return evaluate_ast(expression[2 if condition else 3], assignment)
    raise ValueError(kind)


def all_assignments():
    for values in itertools.product([False, True], repeat=NUM_VARS):
        yield dict(enumerate(values))


# --------------------------------------------------------------------------- #
# properties
# --------------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(expressions())
def test_bdd_matches_ast_semantics(expression):
    manager = BddManager(NUM_VARS)
    function = build_bdd(manager, expression)
    for assignment in all_assignments():
        assert function.evaluate(assignment) == evaluate_ast(expression, assignment)


@settings(max_examples=60, deadline=None)
@given(expressions(), expressions())
def test_canonicity_semantic_equality_is_handle_equality(left, right):
    manager = BddManager(NUM_VARS)
    left_bdd = build_bdd(manager, left)
    right_bdd = build_bdd(manager, right)
    semantically_equal = all(
        evaluate_ast(left, assignment) == evaluate_ast(right, assignment)
        for assignment in all_assignments())
    assert (left_bdd == right_bdd) == semantically_equal


@settings(max_examples=40, deadline=None)
@given(expressions(), st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_shannon_expansion(expression, variable):
    manager = BddManager(NUM_VARS)
    f = build_bdd(manager, expression)
    x = manager.var(variable)
    rebuilt = (x & f.cofactor(variable, True)) | ((~x) & f.cofactor(variable, False))
    assert rebuilt == f


@settings(max_examples=40, deadline=None)
@given(expressions())
def test_double_negation_and_xor_self(expression):
    manager = BddManager(NUM_VARS)
    f = build_bdd(manager, expression)
    assert (~(~f)) == f
    assert (f ^ f).is_false()
    assert (f ^ (~f)).is_true()


@settings(max_examples=40, deadline=None)
@given(expressions(), st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_quantification_bounds(expression, variable):
    manager = BddManager(NUM_VARS)
    f = build_bdd(manager, expression)
    exists = f.exists([variable])
    forall = f.forall([variable])
    # forall f  =>  f  =>  exists f.
    assert (forall.implies(f)).is_true()
    assert (f.implies(exists)).is_true()
    # Quantified results must not depend on the quantified variable.
    assert variable not in exists.support()
    assert variable not in forall.support()


@settings(max_examples=40, deadline=None)
@given(expressions())
def test_satcount_matches_enumeration(expression):
    manager = BddManager(NUM_VARS)
    f = build_bdd(manager, expression)
    expected = sum(evaluate_ast(expression, assignment) for assignment in all_assignments())
    assert f.satcount(NUM_VARS) == expected


@settings(max_examples=30, deadline=None)
@given(expressions(), st.permutations(list(range(NUM_VARS))))
def test_reordering_preserves_semantics(expression, order):
    manager = BddManager(NUM_VARS)
    f = build_bdd(manager, expression)
    (g,) = manager.set_order(list(order), [f])
    for assignment in all_assignments():
        assert g.evaluate(assignment) == evaluate_ast(expression, assignment)

"""Tests for variable orders and the rebuild-based sifting heuristic."""

from __future__ import annotations

import itertools

import pytest

from repro.bdd import BddManager, interleaved_order, natural_order, sift
from repro.bdd.ordering import reversed_order


def all_assignments(variables):
    for values in itertools.product([False, True], repeat=len(variables)):
        yield dict(zip(variables, values))


class TestStaticOrders:
    def test_natural_order(self):
        assert natural_order(4) == [0, 1, 2, 3]
        assert natural_order(0) == []

    def test_reversed_order(self):
        assert reversed_order(4) == [3, 2, 1, 0]

    def test_interleaved_order(self):
        assert interleaved_order([[0, 1, 2], [3, 4, 5]]) == [0, 3, 1, 4, 2, 5]
        assert interleaved_order([[0, 1, 2], [3]]) == [0, 3, 1, 2]
        assert interleaved_order([]) == []


class TestSetOrder:
    def test_set_order_preserves_semantics(self):
        manager = BddManager(4)
        f = (manager.var(0) & manager.var(2)) | (manager.var(1) & manager.var(3))
        g = manager.var(0) ^ manager.var(3)
        new_f, new_g = manager.set_order([3, 1, 2, 0], [f, g])
        for assignment in all_assignments([0, 1, 2, 3]):
            expected_f = ((assignment[0] and assignment[2])
                          or (assignment[1] and assignment[3]))
            expected_g = assignment[0] != assignment[3]
            assert new_f.evaluate(assignment) == expected_f
            assert new_g.evaluate(assignment) == expected_g
        assert manager.current_order() == [3, 1, 2, 0]

    def test_set_order_rejects_non_permutations(self):
        manager = BddManager(3)
        f = manager.var(0)
        with pytest.raises(ValueError):
            manager.set_order([0, 1], [f])
        with pytest.raises(ValueError):
            manager.set_order([0, 1, 1], [f])

    def test_order_affects_node_count(self):
        # The classic example: x0*x1 + x2*x3 + x4*x5 is linear under the
        # natural pairing order and exponential under the interleaved one.
        manager = BddManager(6)
        f = ((manager.var(0) & manager.var(1))
             | (manager.var(2) & manager.var(3))
             | (manager.var(4) & manager.var(5)))
        good_size = f.count_nodes()
        (f_bad,) = manager.set_order([0, 2, 4, 1, 3, 5], [f])
        bad_size = f_bad.count_nodes()
        assert bad_size > good_size


class TestSifting:
    def test_sift_recovers_good_order(self):
        manager = BddManager(6)
        # Start from the pathological order and let sifting improve it.
        f = ((manager.var(0) & manager.var(1))
             | (manager.var(2) & manager.var(3))
             | (manager.var(4) & manager.var(5)))
        (f_bad,) = manager.set_order([0, 2, 4, 1, 3, 5], [f])
        bad_size = f_bad.count_nodes()
        (f_sifted,), new_order = sift(manager, [f_bad])
        assert f_sifted.count_nodes() <= bad_size
        assert sorted(new_order) == list(range(6))
        # Semantics preserved.
        for assignment in all_assignments(list(range(6))):
            expected = ((assignment[0] and assignment[1])
                        or (assignment[2] and assignment[3])
                        or (assignment[4] and assignment[5]))
            assert f_sifted.evaluate(assignment) == expected

    def test_sift_on_constant_is_noop(self):
        manager = BddManager(3)
        roots, order = sift(manager, [manager.true])
        assert roots[0].is_true()
        assert sorted(order) == [0, 1, 2]

    def test_sift_with_empty_roots(self):
        manager = BddManager(2)
        roots, order = sift(manager, [])
        assert roots == []
        assert order == manager.current_order()

    def test_sift_max_vars_limits_work(self):
        manager = BddManager(4)
        f = (manager.var(0) & manager.var(2)) | (manager.var(1) & manager.var(3))
        (f_sifted,), order = sift(manager, [f], max_vars=1)
        assert sorted(order) == [0, 1, 2, 3]
        for assignment in all_assignments([0, 1, 2, 3]):
            expected = ((assignment[0] and assignment[2])
                        or (assignment[1] and assignment[3]))
            assert f_sifted.evaluate(assignment) == expected

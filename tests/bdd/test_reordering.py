"""The in-place dynamic reordering subsystem: adjacent-level swaps, Rudell
sifting, growth-triggered auto-reorder, and the swap-based ``set_order``.

The safety story of in-place reordering is that *node ids keep denoting the
same Boolean functions*: external handles survive untouched, and only the
internal wiring of the two affected levels changes per swap.  Every test
here checks some facet of that invariant — semantics against truth-table
oracles, handle-id preservation, satcount invariance, deep managers at a
tiny recursion limit — plus a regression pinning the historical
``set_order`` behaviour of silently dropping every external reference not
passed in ``roots``.
"""

from __future__ import annotations

import itertools
import random
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd, BddManager, sift
from repro.bdd.manager import FALSE, TRUE


NUM_VARS = 6


def all_assignments(num_vars=NUM_VARS):
    for values in itertools.product([False, True], repeat=num_vars):
        yield dict(enumerate(values))


def random_function(manager, seed, size=12):
    """A deterministic random function built from literals and connectives."""
    rng = random.Random(seed)
    literals = [manager.var(i) for i in range(manager.num_vars)]
    literals += [~lit for lit in literals]
    f = rng.choice(literals)
    for _ in range(size):
        op = rng.randrange(3)
        g = rng.choice(literals)
        if op == 0:
            f = f & g
        elif op == 1:
            f = f | g
        else:
            f = f ^ g
    return f


def truth_table(function, num_vars=NUM_VARS):
    return tuple(function.evaluate(a) for a in all_assignments(num_vars))


class TestSwapAdjacentLevels:
    @pytest.mark.parametrize("seed", range(8))
    def test_swap_preserves_semantics_and_handle_ids(self, seed):
        manager = BddManager(NUM_VARS)
        f = random_function(manager, seed)
        g = random_function(manager, seed + 100)
        expected_f = truth_table(f)
        expected_g = truth_table(g)
        ids = (f.node, g.node)
        rng = random.Random(seed)
        for _ in range(20):
            level = rng.randrange(NUM_VARS - 1)
            manager.swap_adjacent_levels(level)
            # In-place: the registered handles keep their node ids and
            # every id keeps its function.
            assert (f.node, g.node) == ids
            assert truth_table(f) == expected_f
            assert truth_table(g) == expected_g
        assert sorted(manager.current_order()) == list(range(NUM_VARS))

    def test_swap_is_an_involution_on_structure(self):
        manager = BddManager(4)
        f = (manager.var(0) & manager.var(1)) | (manager.var(2) ^ manager.var(3))
        order = manager.current_order()
        size = f.count_nodes()
        manager.swap_adjacent_levels(1)
        assert manager.current_order() != order
        manager.swap_adjacent_levels(1)
        assert manager.current_order() == order
        assert f.count_nodes() == size

    def test_swap_updates_order_bookkeeping(self):
        manager = BddManager(4)
        manager.swap_adjacent_levels(2)
        assert manager.current_order() == [0, 1, 3, 2]
        assert manager.level_of(3) == 2
        assert manager.level_of(2) == 3
        assert manager.var_at_level(2) == 3

    def test_swap_rejects_bad_levels(self):
        manager = BddManager(3)
        with pytest.raises(ValueError):
            manager.swap_adjacent_levels(-1)
        with pytest.raises(ValueError):
            manager.swap_adjacent_levels(2)  # no level below the last

    def test_swap_independent_levels_rewires_nothing(self):
        manager = BddManager(4)
        f = manager.var(0) & manager.var(3)
        assert manager.swap_adjacent_levels(1) == 0  # x1/x2 absent from f
        assert truth_table(f, 4) == truth_table(f, 4)
        assert f.evaluate({0: True, 1: False, 2: False, 3: True})

    def test_swap_preserves_satcount(self):
        manager = BddManager(NUM_VARS)
        f = random_function(manager, 3)
        expected = f.satcount(NUM_VARS)
        for level in range(NUM_VARS - 1):
            manager.swap_adjacent_levels(level)
            assert f.satcount(NUM_VARS) == expected

    def test_swap_keeps_canonicity(self):
        """After swaps, semantically equal functions still share one node."""
        manager = BddManager(NUM_VARS)
        f = random_function(manager, 17)
        manager.swap_adjacent_levels(0)
        manager.swap_adjacent_levels(3)
        rebuilt = random_function(manager, 17)  # same construction again
        assert rebuilt.node == f.node

    def test_terminal_only_manager(self):
        manager = BddManager(2)
        t = manager.true
        manager.swap_adjacent_levels(0)
        assert t.is_true()


class TestSift:
    def test_sift_recovers_good_order(self):
        manager = BddManager(6)
        f = ((manager.var(0) & manager.var(1))
             | (manager.var(2) & manager.var(3))
             | (manager.var(4) & manager.var(5)))
        manager.set_order([0, 2, 4, 1, 3, 5], [f])
        bad_size = f.count_nodes()
        node_before = f.node
        stats = manager.sift()
        assert f.node == node_before  # handles survive in place
        assert stats["nodes_after"] <= stats["nodes_before"]
        assert f.count_nodes() < bad_size
        for assignment in all_assignments(6):
            expected = ((assignment[0] and assignment[1])
                        or (assignment[2] and assignment[3])
                        or (assignment[4] and assignment[5]))
            assert f.evaluate(assignment) == expected

    def test_sift_scores_every_registered_root(self):
        """The size metric covers everything in ``_external_refs``, not a
        caller-chosen subset: a function never passed anywhere still
        constrains the chosen order and stays valid."""
        manager = BddManager(6)
        f = (manager.var(0) & manager.var(3)) | (manager.var(1) & manager.var(4))
        g = manager.var(2) ^ manager.var(5)
        expected_f = truth_table(f)
        expected_g = truth_table(g)
        manager.sift()
        assert truth_table(f) == expected_f
        assert truth_table(g) == expected_g

    def test_sift_max_growth_and_max_vars(self):
        manager = BddManager(6)
        f = random_function(manager, 5, size=20)
        expected = truth_table(f)
        stats = manager.sift(max_vars=2, max_growth=1.05)
        assert stats["swaps"] >= 0
        assert truth_table(f) == expected

    def test_sift_on_single_variable_manager(self):
        manager = BddManager(1)
        f = manager.var(0)
        stats = manager.sift()
        assert stats["swaps"] == 0
        assert f.evaluate({0: True})

    def test_sift_returns_consistent_stats(self):
        manager = BddManager(6)
        f = random_function(manager, 9, size=16)
        stats = manager.sift()
        perf = manager.perf_stats()
        assert perf["reorder_count"] == 1
        assert perf["reorder_nodes_before"] == stats["nodes_before"]
        assert perf["reorder_nodes_after"] == stats["nodes_after"]
        assert perf["reorder_swaps"] >= stats["swaps"]
        assert perf["reorder_pause_seconds"] > 0.0
        assert manager.count_nodes([f.node]) <= stats["nodes_after"]

    def test_module_level_sift_wrapper(self):
        manager = BddManager(6)
        f = ((manager.var(0) & manager.var(1))
             | (manager.var(2) & manager.var(3))
             | (manager.var(4) & manager.var(5)))
        manager.set_order([0, 2, 4, 1, 3, 5], [f])
        bad_size = f.count_nodes()
        (f_sifted,), new_order = sift(manager, [f])
        assert f_sifted.node == f.node  # in place: same node id
        assert f_sifted.count_nodes() <= bad_size
        assert sorted(new_order) == list(range(6))
        assert new_order == manager.current_order()


class TestAutoReorder:
    def test_maybe_reorder_fires_and_backs_off(self):
        manager = BddManager(6, auto_reorder_threshold=4)
        f = manager.true
        for index in range(6):
            f = f & manager.var(index)
        assert f.count_nodes() > 4  # genuinely live above the threshold
        assert manager.maybe_reorder() is True
        stats = manager.perf_stats()
        assert stats["reorder_count"] == 1
        # Geometric back-off: at least double the old threshold.
        assert manager.auto_reorder_threshold >= 8

    def test_maybe_reorder_disabled_by_default(self):
        manager = BddManager(4)
        _ = random_function(manager, 1)
        assert manager.auto_reorder_threshold is None
        assert manager.maybe_reorder() is False
        assert manager.perf_stats()["reorder_count"] == 0

    def test_maybe_reorder_below_threshold_is_noop(self):
        manager = BddManager(4, auto_reorder_threshold=1_000_000)
        _ = random_function(manager, 1)
        assert manager.maybe_reorder() is False

    def test_threshold_settable_at_runtime(self):
        manager = BddManager(4)
        manager.auto_reorder_threshold = 3
        f = manager.true
        for index in range(4):
            f = f & manager.var(index)
        assert f.count_nodes() > 3
        assert manager.maybe_reorder() is True

    def test_maybe_reorder_ignores_garbage(self):
        """The trigger scores *reachable* nodes: a store full of dead apply
        debris is the garbage collector's business, not a reorder trigger."""
        manager = BddManager(6, auto_reorder_threshold=8)
        f = random_function(manager, 6, size=24)
        del f  # everything becomes garbage; allocation stays high
        assert manager.num_live_nodes() > 8
        assert manager.maybe_reorder() is False
        assert manager.perf_stats()["reorder_count"] == 0

    def test_maybe_reorder_skips_unaffordable_sift(self):
        """When even one variable pass would blow the pause work target the
        trigger must back off without sifting — a minutes-long stall
        between two gates is worse than a bigger diagram."""
        manager = BddManager(6, auto_reorder_threshold=4)
        f = manager.true
        for index in range(6):
            f = f & manager.var(index)
        manager._AUTO_REORDER_WORK_TARGET = 1  # pretend the store is huge
        assert manager.maybe_reorder() is False
        assert manager.perf_stats()["reorder_count"] == 0
        assert manager.auto_reorder_threshold == 8  # still backs off

    def test_sift_max_swaps_budget(self):
        manager = BddManager(6)
        f = random_function(manager, 7, size=20)
        expected = truth_table(f)
        stats = manager.sift(max_swaps=4)
        # The budget stops new variables after the first pass; one pass is
        # at most 3 * num_vars swaps (down, up, and the move back).
        assert stats["swaps"] <= 3 * 6
        assert truth_table(f) == expected


class TestSetOrderBySwaps:
    def test_set_order_installs_exact_order(self):
        manager = BddManager(5)
        f = random_function(manager, 21)
        expected = truth_table(f, 5)
        for order in ([4, 3, 2, 1, 0], [2, 0, 4, 1, 3], [0, 1, 2, 3, 4]):
            manager.set_order(order, [f])
            assert manager.current_order() == order
            assert truth_table(f, 5) == expected

    def test_set_order_preserves_unlisted_external_refs(self):
        """Regression: the historical rebuild-based ``set_order`` reset
        ``_external_refs`` to ``{}``, so any live handle not listed in
        ``roots`` dangled — it vanished from the reference table, and the
        next garbage collection freed its nodes while the handle still
        pointed at them.  The swap-based reorder must keep every
        registered reference."""
        manager = BddManager(4)
        f = (manager.var(0) & manager.var(2)) | (manager.var(1) & manager.var(3))
        g = manager.var(0) ^ manager.var(3)
        expected_g = truth_table(g, 4)
        # Only f is passed as a root; g must survive anyway.
        manager.set_order([3, 1, 2, 0], [f])
        assert g.node in manager._external_refs
        manager.garbage_collect()  # would have freed g's nodes before
        assert truth_table(g, 4) == expected_g
        assert g.satcount(4) == 8

    def test_set_order_returns_same_node_ids(self):
        manager = BddManager(4)
        f = random_function(manager, 8)
        (returned,) = manager.set_order([3, 2, 1, 0], [f])
        assert returned.node == f.node

    def test_set_order_rejects_non_permutations(self):
        manager = BddManager(3)
        f = manager.var(0)
        with pytest.raises(ValueError):
            manager.set_order([0, 1], [f])
        with pytest.raises(ValueError):
            manager.set_order([0, 1, 1], [f])

    def test_set_order_accepts_empty_roots(self):
        manager = BddManager(3)
        f = random_function(manager, 30)
        expected = truth_table(f, 3)
        assert manager.set_order([2, 1, 0]) == []
        assert truth_table(f, 3) == expected


class TestSizeCacheInvalidation:
    def test_count_nodes_memo_invalidated_by_swap(self):
        """The memoised node count must track the post-reorder structure —
        exactly the GC invalidation contract."""
        manager = BddManager(6)
        f = ((manager.var(0) & manager.var(1))
             | (manager.var(2) & manager.var(3))
             | (manager.var(4) & manager.var(5)))
        manager.set_order([0, 2, 4, 1, 3, 5], [f])
        bad = f.count_nodes()
        assert f.count_nodes() == bad  # memoised
        manager.set_order([0, 1, 2, 3, 4, 5], [f])
        good = f.count_nodes()
        assert good < bad
        # Oracle: the same function built fresh under the same order.
        oracle = BddManager(6)
        h = ((oracle.var(0) & oracle.var(1))
             | (oracle.var(2) & oracle.var(3))
             | (oracle.var(4) & oracle.var(5)))
        assert good == h.count_nodes()

    def test_swap_bumps_cache_generation(self):
        manager = BddManager(4)
        _ = random_function(manager, 11)
        start = manager.cache_generation
        manager.swap_adjacent_levels(0)
        assert manager.cache_generation == start + 1

    def test_sift_bumps_cache_generation(self):
        manager = BddManager(4)
        _ = random_function(manager, 12)
        start = manager.cache_generation
        manager.sift()
        assert manager.cache_generation > start

    def test_computed_tables_fresh_after_swap(self):
        manager = BddManager(4)
        f = random_function(manager, 13)
        g = random_function(manager, 14)
        _ = f & g
        assert sum(manager.computed_table_sizes().values()) > 0
        manager.swap_adjacent_levels(1)
        assert sum(manager.computed_table_sizes().values()) == 0
        # Recomputation after the swap matches the truth-table oracle.
        conj = f & g
        for assignment in all_assignments(4):
            assert conj.evaluate(assignment) == (
                f.evaluate(assignment) and g.evaluate(assignment))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.permutations(list(range(NUM_VARS))))
def test_property_set_order_then_sift_preserve_satcount(seed, order):
    """For random functions and random orders: satcount (and the full truth
    table) is invariant under ``set_order`` and a subsequent ``sift``."""
    manager = BddManager(NUM_VARS)
    f = random_function(manager, seed)
    expected_count = f.satcount(NUM_VARS)
    expected_table = truth_table(f)
    manager.set_order(list(order), [f])
    assert f.satcount(NUM_VARS) == expected_count
    assert truth_table(f) == expected_table
    manager.sift()
    assert f.satcount(NUM_VARS) == expected_count
    assert truth_table(f) == expected_table


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.lists(st.integers(0, NUM_VARS - 2),
                                        min_size=1, max_size=12))
def test_property_every_adjacent_swap_preserves_semantics(seed, levels):
    """After *every individual* adjacent swap the truth table and satcount
    are unchanged and the handle id is stable."""
    manager = BddManager(NUM_VARS)
    f = random_function(manager, seed)
    expected_count = f.satcount(NUM_VARS)
    expected_table = truth_table(f)
    node = f.node
    for level in levels:
        manager.swap_adjacent_levels(level)
        assert f.node == node
        assert f.satcount(NUM_VARS) == expected_count
        assert truth_table(f) == expected_table


class TestDeepManagerReordering:
    """Reordering is loop-based end to end, so managers far past the
    recursive-apply threshold must reorder under a tiny recursion limit
    (mirrors the PR 3 deep-kernel pinning style)."""

    NUM_VARS = 1500  # > _MAX_RECURSIVE_VARS

    def test_deep_swap_and_sift_under_low_recursion_limit(self):
        manager = BddManager(self.NUM_VARS)
        f = manager.true
        for index in range(self.NUM_VARS):
            f = f & manager.literal(index, True)
        old_limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(220)
            for level in (0, self.NUM_VARS // 2, self.NUM_VARS - 2):
                manager.swap_adjacent_levels(level)
                assert f.satcount(self.NUM_VARS) == 1
            stats = manager.sift(max_vars=3)
            assert stats["nodes_after"] <= stats["nodes_before"]
            assert f.satcount(self.NUM_VARS) == 1
            # The all-ones cube is order-independent: one chain of nodes.
            assert f.count_nodes() == self.NUM_VARS + 2
        finally:
            sys.setrecursionlimit(old_limit)

    def test_deep_set_order_under_low_recursion_limit(self):
        manager = BddManager(self.NUM_VARS)
        f = manager.true
        for index in range(0, self.NUM_VARS, 7):
            f = f & manager.literal(index, index % 2 == 0)
        expected = f.satcount(self.NUM_VARS)
        old_limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(220)
            order = list(range(self.NUM_VARS - 1, -1, -1))
            manager.set_order(order, [f])
            assert manager.current_order() == order
            assert f.satcount(self.NUM_VARS) == expected
        finally:
            sys.setrecursionlimit(old_limit)


class TestGarbageInteraction:
    def test_swap_garbage_is_collectable(self):
        """Nodes orphaned by rewiring stay allocated only until the next GC
        and never leak into live structure."""
        manager = BddManager(NUM_VARS)
        f = random_function(manager, 41, size=20)
        expected = truth_table(f)
        for level in range(NUM_VARS - 1):
            manager.swap_adjacent_levels(level)
        allocated = manager.num_live_nodes()
        manager.garbage_collect()
        assert manager.num_live_nodes() <= allocated
        assert truth_table(f) == expected
        # Everything still allocated is reachable from the handles.
        assert manager.num_live_nodes() == manager.count_nodes(
            list(manager._external_refs))

    def test_reorder_after_gc_recycles_slots_correctly(self):
        manager = BddManager(NUM_VARS)
        f = random_function(manager, 51, size=18)
        g = random_function(manager, 52, size=18)
        del g
        manager.garbage_collect()
        expected = truth_table(f)
        manager.sift()
        assert truth_table(f) == expected


def test_reorder_counters_reset():
    manager = BddManager(4)
    _ = random_function(manager, 61)
    manager.sift()
    manager.reset_perf_counters()
    stats = manager.perf_stats()
    assert stats["reorder_count"] == 0
    assert stats["reorder_swaps"] == 0
    assert stats["reorder_pause_seconds"] == 0.0
    assert stats["reorder_nodes_before"] == 0
    assert stats["reorder_nodes_after"] == 0


def test_handles_created_mid_reordering_are_wrappable():
    """Fresh handles over existing node ids stay usable across reorders."""
    manager = BddManager(4)
    f = random_function(manager, 71)
    alias = Bdd(manager, f.node)
    manager.sift()
    assert alias.node == f.node
    assert truth_table(alias, 4) == truth_table(f, 4)
    assert manager.node_var(f.node) != -2  # never freed
    assert FALSE == 0 and TRUE == 1  # terminals untouched by reordering

"""Test package."""

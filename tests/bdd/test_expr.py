"""Tests for the Bdd handle class itself (plumbing not covered elsewhere)."""

from __future__ import annotations

import pytest

from repro.bdd import Bdd, BddManager


class TestHandleBasics:
    def test_terminal_predicates(self):
        manager = BddManager(1)
        assert manager.true.is_terminal()
        assert manager.false.is_terminal()
        assert not manager.var(0).is_terminal()
        assert manager.var(0).top_var == 0
        assert manager.true.top_var is None

    def test_children_accessors(self):
        manager = BddManager(2)
        f = manager.var(0).ite(manager.var(1), manager.false)
        assert f.top_var == 0
        assert f.low.is_false()
        assert f.high == manager.var(1)

    def test_hash_and_equality_are_per_manager(self):
        left, right = BddManager(1), BddManager(1)
        assert left.var(0) != right.var(0)
        assert hash(left.var(0)) != hash(right.var(0)) or left is not right
        assert left.var(0) == left.var(0)
        assert left.var(0) != "not a bdd"

    def test_repr_forms(self):
        manager = BddManager(1)
        assert repr(manager.true) == "Bdd(TRUE)"
        assert repr(manager.false) == "Bdd(FALSE)"
        assert "top_var=0" in repr(manager.var(0))

    def test_handles_keep_nodes_alive_across_gc(self):
        manager = BddManager(4)
        kept = manager.var(0) ^ manager.var(1) ^ manager.var(2) ^ manager.var(3)
        node_count_before = kept.count_nodes()
        manager.garbage_collect()
        assert kept.count_nodes() == node_count_before
        assert kept.evaluate({0: True, 1: False, 2: False, 3: False}) is True


class TestDerivedOperations:
    def test_ite_with_constants(self):
        manager = BddManager(2)
        x = manager.var(0)
        assert x.ite(manager.true, manager.false) == x
        assert x.ite(manager.false, manager.true) == ~x

    def test_equiv_xor_relationship(self):
        manager = BddManager(2)
        x, y = manager.var(0), manager.var(1)
        assert x.equiv(y) == ~(x ^ y)

    def test_forall_via_double_negation(self):
        manager = BddManager(2)
        f = manager.var(0) | manager.var(1)
        assert f.forall([1]) == manager.var(0)
        assert f.exists([0, 1]).is_true()

    def test_compose_with_constant(self):
        manager = BddManager(2)
        f = manager.var(0) & manager.var(1)
        assert f.compose(0, manager.true) == manager.var(1)
        assert f.compose(0, manager.false).is_false()

    def test_cofactor_cube_empty(self):
        manager = BddManager(2)
        f = manager.var(0) ^ manager.var(1)
        assert f.cofactor_cube([]) == f

    def test_mixed_manager_operations_rejected(self):
        left, right = BddManager(1), BddManager(1)
        with pytest.raises(ValueError):
            left.var(0).ite(right.var(0), left.true)
        with pytest.raises(ValueError):
            left.var(0).compose(0, right.var(0))

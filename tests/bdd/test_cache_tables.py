"""Computed-table behaviour: per-op tables, generation-based invalidation,
size bounding, and the explicit-stack apply on deep managers.

The invalidation tests are the safety net for the hot-path design: a GC or a
variable reorder recycles / renames node ids, so a stale computed-table entry
would silently corrupt results.  Every scenario here checks functional
correctness against a truth-table oracle after the invalidation event.
"""

from __future__ import annotations

import itertools
import sys

import pytest

from repro.bdd import BddManager
from repro.bdd.manager import OP_NAMES


def all_assignments(variables):
    for values in itertools.product([False, True], repeat=len(variables)):
        yield dict(zip(variables, values))


def build_pair(manager):
    """A fixed (f, g) pair with a known truth table."""
    x0, x1, x2, x3 = (manager.var(i) for i in range(4))
    f = (x0 & x1) | (x2 ^ x3)
    g = (x0 | x2) & ~(x1 & x3)
    return f, g


def oracle_f(a):
    return (a[0] and a[1]) or (a[2] != a[3])


def oracle_g(a):
    return (a[0] or a[2]) and not (a[1] and a[3])


class TestGenerationInvalidation:
    def test_generation_advances_on_every_invalidation_event(self):
        manager = BddManager(4)
        f, g = build_pair(manager)
        start = manager.cache_generation
        manager.clear_cache()
        assert manager.cache_generation == start + 1
        manager.garbage_collect()
        assert manager.cache_generation == start + 2
        manager.set_order([3, 2, 1, 0], [f, g])
        assert manager.cache_generation == start + 3
        manager.swap_adjacent_levels(1)
        assert manager.cache_generation == start + 4
        after_swap = manager.cache_generation
        manager.sift()  # runs its own GCs; must advance at least once
        assert manager.cache_generation > after_swap

    def test_size_cache_invalidated_by_reordering_exactly_as_by_gc(self):
        """``count_nodes`` memo entries must not survive any reorder event:
        an in-place swap changes the structure (and therefore the size)
        behind unchanged node ids, which is precisely the staleness GC
        invalidation guards against."""
        manager = BddManager(6)
        f = ((manager.var(0) & manager.var(1))
             | (manager.var(2) & manager.var(3))
             | (manager.var(4) & manager.var(5)))
        good = f.count_nodes()
        assert f.count_nodes() == good  # memoised second query
        manager.set_order([0, 2, 4, 1, 3, 5], [f])
        bad = f.count_nodes()
        assert bad > good  # a stale memo would still report ``good``
        # And the per-swap path invalidates too, not only set_order/sift.
        manager.swap_adjacent_levels(0)
        oracle = BddManager(6)
        h = ((oracle.var(0) & oracle.var(1))
             | (oracle.var(2) & oracle.var(3))
             | (oracle.var(4) & oracle.var(5)))
        oracle.set_order(manager.current_order(), [h])
        assert f.count_nodes() == h.count_nodes()

    def test_tables_are_empty_after_gc_and_reorder(self):
        manager = BddManager(4)
        f, g = build_pair(manager)
        _ = f & g
        assert sum(manager.computed_table_sizes().values()) > 0
        manager.garbage_collect()
        assert sum(manager.computed_table_sizes().values()) == 0
        _ = f | g
        assert sum(manager.computed_table_sizes().values()) > 0
        manager.set_order([0, 2, 1, 3], [f, g])
        # set_order itself repopulates tables while rebuilding; what matters
        # is that the pre-reorder generation's entries are gone.
        assert manager.cache_generation >= 2

    def test_gc_then_reorder_serves_no_stale_results(self):
        """After GC + reorder, recomputed operations must match the oracle
        (a stale entry would surface as a wrong node id here)."""
        manager = BddManager(4)
        f, g = build_pair(manager)
        before_and = f & g
        before_xor = f ^ g
        # Drop temporaries, collect, then reorder: both events recycle or
        # renumber nodes that the old computed tables referenced.
        del before_and, before_xor
        manager.garbage_collect()
        f, g = manager.set_order([2, 0, 3, 1], [f, g])
        after_and = f & g
        after_or = f | g
        after_xor = f ^ g
        for assignment in all_assignments(range(4)):
            expected_f = oracle_f(assignment)
            expected_g = oracle_g(assignment)
            assert f.evaluate(assignment) == expected_f
            assert g.evaluate(assignment) == expected_g
            assert after_and.evaluate(assignment) == (expected_f and expected_g)
            assert after_or.evaluate(assignment) == (expected_f or expected_g)
            assert after_xor.evaluate(assignment) == (expected_f != expected_g)

    def test_node_count_memo_does_not_survive_gc(self):
        manager = BddManager(6)
        f = (manager.var(0) ^ manager.var(1)) | (manager.var(2) & manager.var(3))
        first = f.count_nodes()
        assert f.count_nodes() == first  # memoised second query
        manager.garbage_collect()
        assert f.count_nodes() == first  # recomputed, same structure


class TestSizeBounding:
    def test_tables_are_flushed_past_the_limit(self):
        manager = BddManager(10, cache_size_limit=50)
        rng_terms = []
        for seed in range(30):
            cube = manager.true
            for var in range(4):
                cube = cube & manager.literal((seed + var * 3) % 10, (seed + var) % 2 == 0)
            rng_terms.append(cube)
        function = manager.false
        for term in rng_terms:
            function = function | term
        stats = manager.perf_stats()
        assert stats["cache_evictions"] > 0
        # At every operation boundary each table is within the bound.
        for name, size in manager.computed_table_sizes().items():
            assert size <= 50, name

    def test_unbounded_tables_never_evict(self):
        manager = BddManager(8, cache_size_limit=None)
        f = manager.false
        for index in range(8):
            f = f | (manager.var(index) & manager.var((index + 1) % 8))
        assert manager.perf_stats()["cache_evictions"] == 0


class TestDeepManagerIterativeApply:
    """Managers past the recursion-safe threshold must run every core
    operation on the explicit stack, even under a tiny recursion limit."""

    NUM_VARS = 1500  # > _MAX_RECURSIVE_VARS

    def _chain(self, manager, phase=True):
        f = manager.true
        for index in range(self.NUM_VARS):
            f = f & manager.literal(index, phase)
        return f

    def test_deep_chain_operations_under_low_recursion_limit(self):
        manager = BddManager(self.NUM_VARS)
        old_limit = sys.getrecursionlimit()
        try:
            f = self._chain(manager, True)
            g = self._chain(manager, False)
            sys.setrecursionlimit(220)
            conj = f & g
            assert conj.is_false()
            disj = f | g
            neg = ~disj
            xored = f ^ g
            cof = f.cofactor(self.NUM_VARS // 2, True)
            assert f.satcount(self.NUM_VARS) == 1
            assert neg.satcount(self.NUM_VARS) == (1 << self.NUM_VARS) - 2
            assert xored.satcount(self.NUM_VARS) == 2
            # Cofactoring frees the target variable, doubling the count.
            assert cof.satcount(self.NUM_VARS) == 2
            # Two parallel decision chains that merge at the bottom level,
            # plus the two terminals.
            assert disj.count_nodes() == 2 * self.NUM_VARS + 1
        finally:
            sys.setrecursionlimit(old_limit)

    def test_deep_compose_and_exists_under_low_recursion_limit(self):
        manager = BddManager(self.NUM_VARS)
        old_limit = sys.getrecursionlimit()
        try:
            f = self._chain(manager, True)
            g = manager.var(0) & manager.var(1)
            sys.setrecursionlimit(220)
            composed = f.compose(1400, g)
            # Substituting x0 & x1 (already implied) for x1400 frees x1400.
            assert composed.satcount(self.NUM_VARS) == 2
            erased = f.exists([1400])
            assert erased.satcount(self.NUM_VARS) == 2
        finally:
            sys.setrecursionlimit(old_limit)

    def test_deep_ite_under_low_recursion_limit(self):
        manager = BddManager(self.NUM_VARS)
        old_limit = sys.getrecursionlimit()
        try:
            f = self._chain(manager, True)
            selector = manager.var(0)
            sys.setrecursionlimit(220)
            result = selector.ite(f, ~f)
            assignment = {index: True for index in range(self.NUM_VARS)}
            assert result.evaluate(assignment) is True
            assignment[0] = False
            assert result.evaluate(assignment) is True  # ~f branch
        finally:
            sys.setrecursionlimit(old_limit)


class TestPerOpTables:
    def test_hits_and_misses_are_tracked_per_operation(self):
        manager = BddManager(4)
        f, g = build_pair(manager)
        _ = f & g
        _ = f & g  # top-level hit
        _ = f ^ g
        stats = manager.perf_stats()
        assert stats["cache_and_hits"] >= 1
        assert stats["cache_and_misses"] >= 1
        assert stats["cache_xor_misses"] >= 1
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        for name in OP_NAMES:
            assert f"cache_{name}_hit_rate" in stats

    def test_reset_perf_counters(self):
        manager = BddManager(4)
        f, g = build_pair(manager)
        _ = f & g
        manager.reset_perf_counters()
        stats = manager.perf_stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 0
        assert stats["unique_probes"] == 0

    def test_ite_standard_triples_share_binary_tables(self):
        """ite(f, 1, h) and ite(f, g, 0) must route to OR / AND."""
        manager = BddManager(4)
        f, g = build_pair(manager)
        manager.reset_perf_counters()
        assert f.ite(manager.true, g) == (f | g)
        assert f.ite(g, manager.false) == (f & g)
        stats = manager.perf_stats()
        # The delegated forms must not populate the ITE table at all.
        assert stats["cache_ite_misses"] == 0
        assert manager.computed_table_sizes()["ite"] == 0

"""Property tests for the fused multi-operand kernels.

Each fused kernel must be **node-for-node** equivalent to the naive
2-operand composition it replaces — ROBDD canonicity makes node-id equality
the strongest possible check.  Coverage:

* ``apply_maj3`` vs ``(f & g) | (f & h) | (g & h)`` on randomised DNFs,
* ``apply_xor3`` vs ``f ^ g ^ h``,
* ``apply_swap_vars`` vs the cofactor / connective SWAP formula, including
  adjacent, distant, absent-variable and involution cases,
* every :class:`~repro.bdd.manager.BatchApplier` method vs the equivalent
  sequence of single-shot operations,
* all of the above on a manager past the recursion-safe threshold under an
  artificially tiny recursion limit (the explicit-stack twins).
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.bdd import BatchApplier, Bdd, BddManager


def random_function(manager: BddManager, rng: random.Random,
                    max_terms: int = 18, literals: int = 3) -> Bdd:
    """A random DNF over the manager's variables (structured mid-size BDD)."""
    roll = rng.random()
    if roll < 0.05:
        return manager.false
    if roll < 0.1:
        return manager.true
    function = manager.false
    for _ in range(rng.randrange(1, max_terms)):
        cube = manager.true
        for var in rng.sample(range(manager.num_vars), literals):
            cube = cube & manager.literal(var, rng.random() < 0.5)
        function = function | cube
    return function


def naive_maj3(f: Bdd, g: Bdd, h: Bdd) -> Bdd:
    return (f & g) | (f & h) | (g & h)


def naive_xor3(f: Bdd, g: Bdd, h: Bdd) -> Bdd:
    return f ^ g ^ h


def naive_swap_vars(f: Bdd, var_a: int, var_b: int) -> Bdd:
    manager = f.manager
    qa, qb = manager.var(var_a), manager.var(var_b)
    f_01 = f.cofactor(var_a, False).cofactor(var_b, True)
    f_10 = f.cofactor(var_a, True).cofactor(var_b, False)
    return (qa.equiv(qb) & f) | (qa & ~qb & f_01) | (~qa & qb & f_10)


class TestFusedTernaryKernels:
    @pytest.mark.parametrize("seed", [1, 7, 23, 91])
    def test_maj3_matches_composition(self, seed):
        rng = random.Random(seed)
        manager = BddManager(12)
        for _ in range(40):
            f, g, h = (random_function(manager, rng) for _ in range(3))
            fused = manager.apply_maj3(f.node, g.node, h.node)
            assert fused == naive_maj3(f, g, h).node

    @pytest.mark.parametrize("seed", [2, 11, 29, 83])
    def test_xor3_matches_composition(self, seed):
        rng = random.Random(seed)
        manager = BddManager(12)
        for _ in range(40):
            f, g, h = (random_function(manager, rng) for _ in range(3))
            fused = manager.apply_xor3(f.node, g.node, h.node)
            assert fused == naive_xor3(f, g, h).node

    def test_degenerate_operands(self):
        manager = BddManager(6)
        rng = random.Random(5)
        f = random_function(manager, rng)
        g = random_function(manager, rng)
        false, true = manager.false, manager.true
        for x, y in ((f, g), (f, f), (f, true), (f, false), (false, true)):
            for triple in ((x, x, y), (x, y, x), (y, x, x),
                           (false, x, y), (x, true, y)):
                assert (triple[0].maj3(triple[1], triple[2])
                        == naive_maj3(*triple))
                assert (triple[0].xor3(triple[1], triple[2])
                        == naive_xor3(*triple))

    def test_handle_front_ends(self):
        manager = BddManager(8)
        rng = random.Random(13)
        f, g, h = (random_function(manager, rng) for _ in range(3))
        assert f.maj3(g, h) == naive_maj3(f, g, h)
        assert f.xor3(g, h) == naive_xor3(f, g, h)

    def test_full_adder_semantics(self):
        """One fused sum / carry pair equals integer addition on every
        assignment — the property the ripple chains rely on."""
        manager = BddManager(6)
        rng = random.Random(17)
        a = random_function(manager, rng)
        b = random_function(manager, rng)
        c = random_function(manager, rng)
        total = a.xor3(b, c)
        carry = a.maj3(b, c)
        import itertools
        for values in itertools.product([False, True], repeat=6):
            assignment = dict(enumerate(values))
            bits = sum((a.evaluate(assignment), b.evaluate(assignment),
                        c.evaluate(assignment)))
            assert total.evaluate(assignment) == bool(bits & 1)
            assert carry.evaluate(assignment) == (bits >= 2)


class TestFusedSwapVars:
    @pytest.mark.parametrize("seed", [3, 19, 41])
    def test_swap_matches_composition(self, seed):
        rng = random.Random(seed)
        manager = BddManager(12)
        for _ in range(60):
            f = random_function(manager, rng)
            var_a, var_b = rng.sample(range(12), 2)
            fused = manager.apply_swap_vars(f.node, var_a, var_b)
            assert fused == naive_swap_vars(f, var_a, var_b).node

    def test_adjacent_and_extreme_pairs(self):
        manager = BddManager(10)
        rng = random.Random(31)
        f = random_function(manager, rng)
        for var_a, var_b in ((0, 1), (8, 9), (0, 9), (4, 5), (9, 0)):
            assert (f.swap_vars(var_a, var_b)
                    == naive_swap_vars(f, var_a, var_b))

    def test_swap_is_an_involution(self):
        manager = BddManager(10)
        rng = random.Random(37)
        for _ in range(25):
            f = random_function(manager, rng)
            var_a, var_b = rng.sample(range(10), 2)
            assert f.swap_vars(var_a, var_b).swap_vars(var_b, var_a) == f

    def test_swap_same_variable_is_identity(self):
        manager = BddManager(6)
        rng = random.Random(43)
        f = random_function(manager, rng)
        assert f.swap_vars(3, 3) == f

    def test_swap_of_absent_variables_is_identity(self):
        manager = BddManager(8)
        # f depends only on variables 2 and 3.
        f = manager.var(2) & ~manager.var(3)
        assert f.swap_vars(5, 6) == f
        # Swapping an absent variable with a present one renames it.
        renamed = f.swap_vars(2, 5)
        assert renamed == (manager.var(5) & ~manager.var(3))


class TestBatchApplier:
    def _functions(self, manager, rng, count=9):
        return [random_function(manager, rng) for _ in range(count)]

    def test_batches_match_single_shot_operations(self):
        manager = BddManager(10)
        rng = random.Random(53)
        functions = self._functions(manager, rng)
        nodes = [f.node for f in functions]
        pairs = list(zip(nodes, nodes[1:]))
        triples = list(zip(nodes, nodes[1:], nodes[2:]))
        batch = BatchApplier(manager)
        assert batch.and_many(pairs) == [manager.apply_and(*p) for p in pairs]
        assert batch.or_many(pairs) == [manager.apply_or(*p) for p in pairs]
        assert batch.xor_many(pairs) == [manager.apply_xor(*p) for p in pairs]
        assert batch.not_many(nodes) == [manager.apply_not(n) for n in nodes]
        assert batch.ite_many(triples) == [manager.apply_ite(*t) for t in triples]
        assert batch.maj3_many(triples) == [manager.apply_maj3(*t) for t in triples]
        assert batch.xor3_many(triples) == [manager.apply_xor3(*t) for t in triples]
        assert (batch.restrict_many(nodes, 4, True)
                == [manager.apply_restrict(n, 4, True) for n in nodes])
        assert (batch.swap_vars_many(nodes, 1, 7)
                == [manager.apply_swap_vars(n, 1, 7) for n in nodes])

    def test_empty_batches(self):
        manager = BddManager(4)
        batch = BatchApplier(manager)
        assert batch.and_many([]) == []
        assert batch.not_many([]) == []
        assert batch.maj3_many([]) == []
        assert batch.restrict_many([], 0, False) == []
        assert batch.swap_vars_many([], 0, 1) == []

    def test_batch_counters(self):
        manager = BddManager(6)
        rng = random.Random(59)
        nodes = [f.node for f in self._functions(manager, rng, 5)]
        before = manager.perf_stats()
        batch = BatchApplier(manager)
        batch.not_many(nodes)
        batch.xor3_many(list(zip(nodes, nodes[1:], nodes[2:])))
        stats = manager.perf_stats()
        assert stats["batch_runs"] == before["batch_runs"] + 2
        assert stats["batch_items"] == before["batch_items"] + 5 + 3


class TestDeepManagerFusedKernels:
    """Managers past the recursion-safe threshold must run the fused kernels
    on the explicit stack, even under a tiny recursion limit."""

    NUM_VARS = 1500  # > _MAX_RECURSIVE_VARS

    def _chain(self, manager, step):
        f = manager.true
        for index in range(self.NUM_VARS):
            f = f & manager.literal(index, index % step != 0)
        return f

    def test_deep_fused_kernels_under_low_recursion_limit(self):
        manager = BddManager(self.NUM_VARS)
        old_limit = sys.getrecursionlimit()
        try:
            f = self._chain(manager, 3)
            g = self._chain(manager, 2)
            h = ~manager.var(10) | manager.var(1200)
            sys.setrecursionlimit(220)
            assert (f.maj3(g, h)) == naive_maj3(f, g, h)
            assert (f.xor3(g, h)) == naive_xor3(f, g, h)
            swapped = f.swap_vars(5, 1400)
            assert swapped == naive_swap_vars(f, 5, 1400)
            assert swapped.swap_vars(1400, 5) == f
            batch = BatchApplier(manager)
            triples = [(f.node, g.node, h.node), (g.node, h.node, f.node)]
            assert batch.maj3_many(triples) == [manager.apply_maj3(*t) for t in triples]
            assert batch.xor3_many(triples) == [manager.apply_xor3(*t) for t in triples]
            assert (batch.swap_vars_many([f.node, g.node], 5, 1400)
                    == [manager.apply_swap_vars(n, 5, 1400) for n in (f.node, g.node)])
        finally:
            sys.setrecursionlimit(old_limit)

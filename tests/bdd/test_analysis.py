"""Tests for the BDD analysis and export helpers."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager, count_nodes, satisfying_assignments, to_dot, truth_table
from repro.bdd.analysis import function_density, shared_size_profile


class TestCountNodes:
    def test_shared_counting(self):
        manager = BddManager(3)
        f = manager.var(0) & manager.var(1)
        g = manager.var(0) & manager.var(1) & manager.var(2)
        shared = count_nodes([f, g])
        # Shared structure must not be double counted.
        assert shared < f.count_nodes() + g.count_nodes()
        assert shared >= max(f.count_nodes(), g.count_nodes())

    def test_empty_list(self):
        assert count_nodes([]) == 0

    def test_mixed_managers_rejected(self):
        left, right = BddManager(1), BddManager(1)
        with pytest.raises(ValueError):
            count_nodes([left.var(0), right.var(0)])


class TestTruthTable:
    def test_and_function(self):
        manager = BddManager(2)
        table = truth_table(manager.var(0) & manager.var(1), [0, 1])
        assert table == [False, False, False, True]

    def test_variable_order_in_index(self):
        manager = BddManager(2)
        # Passing [1, 0] makes variable 1 the most significant index bit.
        table = truth_table(manager.var(1), [1, 0])
        assert table == [False, False, True, True]

    def test_constant_functions(self):
        manager = BddManager(2)
        assert truth_table(manager.true, [0, 1]) == [True] * 4
        assert truth_table(manager.false, [0, 1]) == [False] * 4

    def test_missing_support_variable_raises(self):
        manager = BddManager(2)
        with pytest.raises(KeyError):
            truth_table(manager.var(0) & manager.var(1), [0])


class TestSatisfyingAssignments:
    def test_enumeration(self):
        manager = BddManager(3)
        f = manager.var(0) & manager.nvar(2)
        assignments = satisfying_assignments(f, [0, 1, 2])
        assert len(assignments) == 2
        for assignment in assignments:
            assert assignment[0] is True
            assert assignment[2] is False

    def test_density(self):
        manager = BddManager(3)
        assert function_density(manager.true, [0, 1, 2]) == 1.0
        assert function_density(manager.false, [0, 1, 2]) == 0.0
        assert function_density(manager.var(0), [0, 1, 2]) == 0.5


class TestDotExport:
    def test_dot_output_mentions_all_nodes(self):
        manager = BddManager(2)
        f = manager.var(0) ^ manager.var(1)
        dot = to_dot([f], ["parity"])
        assert dot.startswith("digraph bdd {")
        assert '"parity"' in dot
        assert "x0" in dot and "x1" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_empty(self):
        assert to_dot([]) == "digraph bdd {\n}\n"

    def test_dot_shares_nodes_between_roots(self):
        manager = BddManager(2)
        f = manager.var(0) & manager.var(1)
        g = manager.var(0) & manager.var(1)
        dot = to_dot([f, g], ["f", "g"])
        # Same function: its decision nodes appear exactly once.
        assert dot.count('[label="x0"') == 1


class TestSizeProfile:
    def test_profile_counts_labels(self):
        manager = BddManager(3)
        f = (manager.var(0) & manager.var(1)) | manager.var(2)
        profile = shared_size_profile([f])
        assert set(profile) <= {0, 1, 2}
        assert sum(profile.values()) == f.count_nodes() - 2  # minus terminals

    def test_profile_empty(self):
        assert shared_size_profile([]) == {}

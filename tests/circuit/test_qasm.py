"""Tests for the OpenQASM 2.0 subset reader / writer."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind
from repro.circuit.qasm import circuit_from_qasm, circuit_to_qasm


class TestWriter:
    def test_header_and_register(self):
        text = circuit_to_qasm(QuantumCircuit(3).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_all_gate_spellings(self):
        circuit = QuantumCircuit(3)
        circuit.x(0).y(1).z(2).h(0).s(1).sdg(2).t(0).tdg(1)
        circuit.rx_pi_2(2).ry_pi_2(0)
        circuit.cx(0, 1).cz(1, 2).swap(0, 2).toffoli(0, 1, 2).fredkin(0, 1, 2)
        text = circuit_to_qasm(circuit)
        for fragment in ("x q[0]", "y q[1]", "z q[2]", "sdg q[2]", "tdg q[1]",
                         "rx(pi/2) q[2]", "ry(pi/2) q[0]", "cx q[0], q[1]",
                         "cz q[1], q[2]", "swap q[0], q[2]",
                         "ccx q[0], q[1], q[2]", "cswap q[0], q[1], q[2]"):
            assert fragment in text

    def test_measurements_emit_creg(self):
        circuit = QuantumCircuit(2).h(0).measure(0).measure(1)
        text = circuit_to_qasm(circuit)
        assert "creg c[2];" in text
        assert "measure q[0] -> c[0];" in text
        assert "measure q[1] -> c[1];" in text

    def test_multi_control_toffoli_rejected(self):
        circuit = QuantumCircuit(4).ccx([0, 1, 2], 3)
        with pytest.raises(ValueError):
            circuit_to_qasm(circuit)


class TestReader:
    def test_round_trip(self):
        original = QuantumCircuit(3, name="rt")
        original.h(0).t(1).cx(0, 1).cz(1, 2).swap(0, 2)
        original.toffoli(0, 1, 2).fredkin(0, 1, 2).sdg(2).rx_pi_2(1)
        original.measure(0).measure(2)
        parsed = circuit_from_qasm(circuit_to_qasm(original), name="rt")
        assert parsed.num_qubits == original.num_qubits
        assert parsed.gates == original.gates
        assert parsed.measured_qubits == original.measured_qubits

    def test_parse_minimal_program(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0], q[1];
        measure q[0] -> c[0];
        """
        circuit = circuit_from_qasm(text)
        assert circuit.num_qubits == 2
        assert [gate.kind for gate in circuit] == [GateKind.H, GateKind.CX]
        assert circuit.measured_qubits == [0]

    def test_comments_and_barriers_ignored(self):
        text = """
        OPENQASM 2.0;
        qreg q[1];
        // a comment line
        h q[0];  // trailing comment
        barrier q[0];
        """
        circuit = circuit_from_qasm(text)
        assert circuit.num_gates == 1

    def test_rx_with_wrong_angle_rejected(self):
        text = "qreg q[1];\nrx(pi/4) q[0];\n"
        with pytest.raises(ValueError):
            circuit_from_qasm(text)

    def test_rx_pi_2_parses(self):
        text = "qreg q[1];\nrx(pi/2) q[0];\nry(pi/2) q[0];\n"
        circuit = circuit_from_qasm(text)
        assert [g.kind for g in circuit] == [GateKind.RX_PI_2, GateKind.RY_PI_2]

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            circuit_from_qasm("qreg q[2];\ncrz(0.3) q[0], q[1];\n")

    def test_missing_register_rejected(self):
        with pytest.raises(ValueError):
            circuit_from_qasm("h q[0];\n")

    def test_unparseable_statement_rejected(self):
        with pytest.raises(ValueError):
            circuit_from_qasm("qreg q[1];\n???;\n")

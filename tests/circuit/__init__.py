"""Test package."""

"""Unit tests for gate specifications, matrices and the Gate dataclass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.gates import (
    GATE_SPECS,
    PAPER_GATE_KINDS,
    Gate,
    GateKind,
    full_unitary,
    gate_matrix,
    gate_matrix_exact,
    is_clifford_gate,
)

SINGLE_QUBIT_KINDS = [
    GateKind.X, GateKind.Y, GateKind.Z, GateKind.H, GateKind.S, GateKind.SDG,
    GateKind.T, GateKind.TDG, GateKind.RX_PI_2, GateKind.RY_PI_2,
]


class TestGateSpecs:
    def test_every_kind_has_a_spec(self):
        for kind in GateKind:
            assert kind in GATE_SPECS
            assert GATE_SPECS[kind].kind is kind

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    def test_base_matrices_are_unitary(self, kind):
        matrix = gate_matrix(kind)
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-12)

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    def test_exact_and_float_matrices_agree(self, kind):
        exact = gate_matrix_exact(kind)
        matrix = gate_matrix(kind)
        for row in range(2):
            for column in range(2):
                assert abs(exact[row][column].to_complex() - matrix[row, column]) < 1e-12

    def test_known_matrices(self):
        assert np.allclose(gate_matrix(GateKind.X), [[0, 1], [1, 0]])
        assert np.allclose(gate_matrix(GateKind.Z), [[1, 0], [0, -1]])
        assert np.allclose(gate_matrix(GateKind.S), [[1, 0], [0, 1j]])
        assert np.allclose(gate_matrix(GateKind.H),
                           np.array([[1, 1], [1, -1]]) / np.sqrt(2))
        assert np.allclose(gate_matrix(GateKind.T),
                           [[1, 0], [0, np.exp(1j * np.pi / 4)]])

    def test_k_increments(self):
        assert GATE_SPECS[GateKind.H].k_increment == 1
        assert GATE_SPECS[GateKind.RX_PI_2].k_increment == 1
        assert GATE_SPECS[GateKind.RY_PI_2].k_increment == 1
        assert GATE_SPECS[GateKind.T].k_increment == 0
        assert GATE_SPECS[GateKind.CX].k_increment == 0

    def test_imaginary_classification_matches_paper(self):
        # Paper: Y, S, T and Rx(pi/2) couple the bit-planes; X, Z, H, Ry,
        # CNOT, CZ, Toffoli and Fredkin do not.
        assert GATE_SPECS[GateKind.Y].has_imaginary
        assert GATE_SPECS[GateKind.S].has_imaginary
        assert GATE_SPECS[GateKind.T].has_imaginary
        assert GATE_SPECS[GateKind.RX_PI_2].has_imaginary
        for kind in (GateKind.X, GateKind.Z, GateKind.H, GateKind.RY_PI_2,
                     GateKind.CX, GateKind.CZ, GateKind.CCX, GateKind.CSWAP):
            assert not GATE_SPECS[kind].has_imaginary

    def test_paper_gate_set_contents(self):
        assert GateKind.SDG not in PAPER_GATE_KINDS
        assert GateKind.TDG not in PAPER_GATE_KINDS
        assert GateKind.SWAP not in PAPER_GATE_KINDS
        for kind in (GateKind.X, GateKind.H, GateKind.T, GateKind.CCX, GateKind.CSWAP):
            assert kind in PAPER_GATE_KINDS

    def test_matrix_requests_for_matrixless_kinds_fail(self):
        with pytest.raises(ValueError):
            gate_matrix(GateKind.SWAP)
        with pytest.raises(ValueError):
            gate_matrix_exact(GateKind.MEASURE)


class TestGateValidation:
    def test_valid_gates(self):
        Gate(GateKind.X, (0,))
        Gate(GateKind.CX, (1,), (0,))
        Gate(GateKind.CCX, (2,), (0, 1, 3))
        Gate(GateKind.CSWAP, (1, 2), (0,))
        Gate(GateKind.SWAP, (0, 3))

    def test_wrong_target_count(self):
        with pytest.raises(ValueError):
            Gate(GateKind.X, (0, 1))
        with pytest.raises(ValueError):
            Gate(GateKind.SWAP, (0,))

    def test_wrong_control_count(self):
        with pytest.raises(ValueError):
            Gate(GateKind.CX, (0,))
        with pytest.raises(ValueError):
            Gate(GateKind.CX, (0,), (1, 2))
        with pytest.raises(ValueError):
            Gate(GateKind.CCX, (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateKind.CX, (0,), (0,))
        with pytest.raises(ValueError):
            Gate(GateKind.SWAP, (1, 1))

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateKind.X, (-1,))

    def test_qubits_property(self):
        gate = Gate(GateKind.CCX, (3,), (0, 1))
        assert gate.qubits == (0, 1, 3)
        assert gate.is_two_qubit_or_more
        assert not Gate(GateKind.H, (0,)).is_two_qubit_or_more

    def test_str(self):
        assert "cx" in str(Gate(GateKind.CX, (1,), (0,)))


class TestGateInverse:
    @pytest.mark.parametrize("kind", [GateKind.X, GateKind.Y, GateKind.Z, GateKind.H,
                                      GateKind.SWAP])
    def test_self_inverse(self, kind):
        targets = (0, 1) if kind is GateKind.SWAP else (0,)
        gate = Gate(kind, targets)
        assert gate.inverse() == gate

    def test_s_t_inverses(self):
        assert Gate(GateKind.S, (0,)).inverse().kind is GateKind.SDG
        assert Gate(GateKind.SDG, (0,)).inverse().kind is GateKind.S
        assert Gate(GateKind.T, (0,)).inverse().kind is GateKind.TDG
        assert Gate(GateKind.TDG, (0,)).inverse().kind is GateKind.T

    def test_rx_has_no_inverse_in_set(self):
        with pytest.raises(ValueError):
            Gate(GateKind.RX_PI_2, (0,)).inverse()

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    def test_inverse_matrix_is_adjoint(self, kind):
        gate = Gate(kind, (0,))
        try:
            inverse = gate.inverse()
        except ValueError:
            pytest.skip("no inverse inside the supported set")
        product = gate_matrix(inverse.kind) @ gate_matrix(kind)
        assert np.allclose(product, np.eye(2), atol=1e-12)


class TestFullUnitary:
    def test_cnot_unitary(self):
        gate = Gate(GateKind.CX, (1,), (0,))
        expected = np.array([[1, 0, 0, 0],
                             [0, 1, 0, 0],
                             [0, 0, 0, 1],
                             [0, 0, 1, 0]], dtype=complex)
        assert np.allclose(full_unitary(gate, 2), expected)

    def test_cz_unitary(self):
        gate = Gate(GateKind.CZ, (1,), (0,))
        expected = np.diag([1, 1, 1, -1]).astype(complex)
        assert np.allclose(full_unitary(gate, 2), expected)

    def test_toffoli_unitary_matches_paper_table1(self):
        gate = Gate(GateKind.CCX, (2,), (0, 1))
        expected = np.eye(8, dtype=complex)
        expected[[6, 7]] = expected[[7, 6]]
        assert np.allclose(full_unitary(gate, 3), expected)

    def test_fredkin_unitary_matches_paper_table1(self):
        gate = Gate(GateKind.CSWAP, (1, 2), (0,))
        expected = np.eye(8, dtype=complex)
        expected[[5, 6]] = expected[[6, 5]]
        assert np.allclose(full_unitary(gate, 3), expected)

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    def test_single_qubit_embedding(self, kind):
        gate = Gate(kind, (1,))
        expected = np.kron(np.eye(2), gate_matrix(kind))
        assert np.allclose(full_unitary(gate, 2), expected)

    @pytest.mark.parametrize("num_qubits", [2, 3])
    def test_full_unitaries_are_unitary(self, num_qubits):
        gates = [Gate(GateKind.H, (0,)), Gate(GateKind.CX, (1,), (0,)),
                 Gate(GateKind.SWAP, (0, num_qubits - 1))]
        for gate in gates:
            unitary = full_unitary(gate, num_qubits)
            assert np.allclose(unitary @ unitary.conj().T,
                               np.eye(1 << num_qubits), atol=1e-12)


class TestCliffordClassification:
    def test_clifford_gates(self):
        assert is_clifford_gate(Gate(GateKind.H, (0,)))
        assert is_clifford_gate(Gate(GateKind.S, (0,)))
        assert is_clifford_gate(Gate(GateKind.CX, (1,), (0,)))
        assert is_clifford_gate(Gate(GateKind.CZ, (1,), (0,)))

    def test_non_clifford_gates(self):
        assert not is_clifford_gate(Gate(GateKind.T, (0,)))
        assert not is_clifford_gate(Gate(GateKind.CCX, (2,), (0, 1)))
        assert not is_clifford_gate(Gate(GateKind.CSWAP, (1, 2), (0,)))

    def test_degenerate_control_counts(self):
        # A single-control "Toffoli" is just a CNOT: Clifford.
        assert is_clifford_gate(Gate(GateKind.CCX, (1,), (0,)))
        # The uncontrolled swap is its own (Clifford) gate kind.
        assert is_clifford_gate(Gate(GateKind.SWAP, (0, 1)))

"""Round-trip tests for the dynamic-circuit QASM constructs.

Covers the clbit-index fix (``measure q[i] -> c[j]`` used to drop ``j``),
``reset``, ``if(c==v)`` conditions, and the mid-circuit vs terminal
measurement classification.
"""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.circuit.qasm import circuit_from_qasm, circuit_to_qasm


class TestMeasureClbits:
    def test_remapped_clbit_survives_round_trip(self):
        circuit = QuantumCircuit(3).h(0)
        circuit.measure(0, 2).measure(2, 0)
        text = circuit_to_qasm(circuit)
        assert "measure q[0] -> c[2];" in text
        assert "measure q[2] -> c[0];" in text
        parsed = circuit_from_qasm(text)
        assert parsed.final_measurement_map() == [(0, 2), (2, 0)]

    def test_parser_keeps_clbit_index(self):
        # Regression: the parser used to discard the target clbit entirely.
        text = "qreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[1];\n"
        parsed = circuit_from_qasm(text)
        assert parsed.measured_qubits == [0]
        assert parsed.measured_clbits == [1]
        assert parsed.num_clbits == 2

    def test_default_clbit_is_qubit_index(self):
        circuit = QuantumCircuit(2).h(0).measure_all()
        assert circuit.final_measurement_map() == [(0, 0), (1, 1)]

    def test_creg_width_round_trips(self):
        circuit = QuantumCircuit(2).h(0)
        circuit.measure(0, 5)
        parsed = circuit_from_qasm(circuit_to_qasm(circuit))
        assert parsed.num_clbits == 6


class TestMidCircuitMeasure:
    def test_measure_before_gates_becomes_instruction(self):
        text = """
        qreg q[2];
        creg c[2];
        h q[0];
        measure q[0] -> c[0];
        x q[1];
        """
        parsed = circuit_from_qasm(text)
        kinds = [gate.kind for gate in parsed]
        assert kinds == [GateKind.H, GateKind.MEASURE, GateKind.X]
        assert parsed.gates[1].clbits == (0,)
        assert parsed.measured_qubits == []  # nothing terminal
        assert parsed.has_dynamic_ops()

    def test_trailing_measures_become_markers(self):
        text = """
        qreg q[2];
        creg c[2];
        h q[0];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
        """
        parsed = circuit_from_qasm(text)
        assert [gate.kind for gate in parsed] == [GateKind.H]
        assert parsed.final_measurement_map() == [(0, 0), (1, 1)]
        assert not parsed.has_dynamic_ops()

    def test_mid_circuit_round_trip(self):
        circuit = QuantumCircuit(2, name="dyn")
        circuit.h(0).measure_mid(0, 0).x(1).measure(1, 1)
        parsed = circuit_from_qasm(circuit_to_qasm(circuit))
        assert parsed == circuit


class TestResetAndConditions:
    def test_reset_round_trip(self):
        circuit = QuantumCircuit(2).h(0).reset(0).h(0)
        text = circuit_to_qasm(circuit)
        assert "reset q[0];" in text
        parsed = circuit_from_qasm(text)
        assert parsed == circuit
        assert parsed.has_dynamic_ops()

    def test_condition_round_trip(self):
        circuit = QuantumCircuit(2, name="cond")
        circuit.h(0).measure_mid(0, 0)
        circuit.add(GateKind.X, [1], condition=1)
        circuit.add(GateKind.CX, [1], [0], condition=3)
        circuit.measure(1, 1)
        text = circuit_to_qasm(circuit)
        assert "if(c==1) x q[1];" in text
        assert "if(c==3) cx q[0], q[1];" in text
        parsed = circuit_from_qasm(text)
        assert parsed == circuit

    def test_conditioned_measure_and_reset_parse(self):
        text = """
        qreg q[2];
        creg c[2];
        measure q[0] -> c[0];
        if(c==1) reset q[1];
        if(c==1) measure q[1] -> c[1];
        """
        parsed = circuit_from_qasm(text)
        kinds = [(gate.kind, gate.condition) for gate in parsed]
        assert kinds == [(GateKind.MEASURE, None), (GateKind.RESET, 1),
                         (GateKind.MEASURE, 1)]

    def test_condition_emitted_for_round_trip_gate_stream(self):
        circuit = QuantumCircuit(1)
        circuit.measure_mid(0, 0)
        circuit.add(GateKind.H, [0], condition=0)
        parsed = circuit_from_qasm(circuit_to_qasm(circuit))
        assert parsed.gates[-1].condition == 0


class TestGateValidation:
    def test_measure_gate_accepts_one_clbit(self):
        gate = Gate(GateKind.MEASURE, (0,), clbits=(3,))
        assert gate.clbits == (3,)

    def test_measure_gate_rejects_two_clbits(self):
        with pytest.raises(ValueError):
            Gate(GateKind.MEASURE, (0,), clbits=(0, 1))

    def test_unitary_gate_rejects_clbits(self):
        with pytest.raises(ValueError):
            Gate(GateKind.X, (0,), clbits=(0,))

    def test_negative_condition_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateKind.X, (0,), condition=-1)

    def test_conditioned_gates_do_not_cancel_across_conditions(self):
        from repro.circuit.transforms import cancel_adjacent_inverses

        circuit = QuantumCircuit(1)
        circuit.add(GateKind.X, [0], condition=1)
        circuit.add(GateKind.X, [0])
        assert cancel_adjacent_inverses(circuit).num_gates == 2
        same = QuantumCircuit(1)
        same.add(GateKind.X, [0], condition=1)
        same.add(GateKind.X, [0], condition=1)
        assert cancel_adjacent_inverses(same).num_gates == 0

    def test_expand_swaps_preserves_conditions(self):
        from repro.circuit.transforms import expand_swaps

        circuit = QuantumCircuit(3)
        circuit.measure_mid(2, 0)
        circuit.add(GateKind.SWAP, [0, 1], condition=1)
        circuit.add(GateKind.CSWAP, [0, 1], [2], condition=1)
        expanded = expand_swaps(circuit)
        rewritten = [gate for gate in expanded
                     if gate.kind is not GateKind.MEASURE]
        assert rewritten and all(gate.condition == 1 for gate in rewritten)

    def test_decompose_multi_control_preserves_conditions(self):
        from repro.circuit.transforms import decompose_multi_control

        circuit = QuantumCircuit(5)
        circuit.measure_mid(4, 0)
        circuit.add(GateKind.CCX, [3], [0, 1, 2], condition=1)
        decomposed = decompose_multi_control(circuit)
        chain = [gate for gate in decomposed if gate.kind is GateKind.CCX]
        assert chain and all(gate.condition == 1 for gate in chain)

    def test_measure_capability_requires_collapse_support(self):
        from repro.engines import engine_capabilities

        measure = Gate(GateKind.MEASURE, (0,), clbits=(0,))
        assert engine_capabilities("bitslice").supports_gate(measure)
        capabilities = engine_capabilities("bitslice").__class__(
            name="x", label="x", supported_gates=frozenset(),
            exact=False, supports_measurement=False)
        assert not capabilities.supports_gate(measure)

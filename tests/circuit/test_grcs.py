"""Tests for the GRCS (Google supremacy) text format reader / writer."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind
from repro.circuit.grcs import GrcsFormatError, circuit_from_grcs, circuit_to_grcs


SAMPLE = """
4
0 h 0
0 h 1
0 h 2
0 h 3
1 cz 0 1
1 t 2
1 x_1_2 3
2 cz 2 3
2 y_1_2 0
2 t 1
"""


class TestReader:
    def test_parse_sample(self):
        circuit = circuit_from_grcs(SAMPLE)
        assert circuit.num_qubits == 4
        kinds = [gate.kind for gate in circuit]
        assert kinds == [GateKind.H] * 4 + [GateKind.CZ, GateKind.T, GateKind.RX_PI_2,
                                            GateKind.CZ, GateKind.RY_PI_2, GateKind.T]

    def test_cz_operands(self):
        circuit = circuit_from_grcs(SAMPLE)
        cz = circuit[4]
        assert cz.controls == (0,)
        assert cz.targets == (1,)

    def test_empty_input_rejected(self):
        with pytest.raises(GrcsFormatError):
            circuit_from_grcs("")

    def test_bad_first_line_rejected(self):
        with pytest.raises(GrcsFormatError):
            circuit_from_grcs("h 0 1\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(GrcsFormatError):
            circuit_from_grcs("2\n0 rz 0\n")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(GrcsFormatError):
            circuit_from_grcs("2\n0 cz 0\n")
        with pytest.raises(GrcsFormatError):
            circuit_from_grcs("2\n0 h 0 1\n")

    def test_cnot_spelling(self):
        circuit = circuit_from_grcs("2\n0 cnot 0 1\n")
        assert circuit[0].kind is GateKind.CX


class TestWriter:
    def test_round_trip(self):
        original = circuit_from_grcs(SAMPLE)
        text = circuit_to_grcs(original)
        parsed = circuit_from_grcs(text)
        assert parsed.num_qubits == original.num_qubits
        assert parsed.gates == original.gates

    def test_first_line_is_qubit_count(self):
        circuit = QuantumCircuit(3).h(0).cz(0, 1).t(2)
        text = circuit_to_grcs(circuit)
        assert text.splitlines()[0] == "3"

    def test_cycle_numbers_follow_depth(self):
        circuit = QuantumCircuit(2).h(0).h(1).cz(0, 1).t(0)
        lines = circuit_to_grcs(circuit).splitlines()[1:]
        cycles = [int(line.split()[0]) for line in lines]
        assert cycles == [0, 0, 1, 2]

    def test_unsupported_gate_rejected(self):
        with pytest.raises(GrcsFormatError):
            circuit_to_grcs(QuantumCircuit(3).ccx([0, 1], 2))

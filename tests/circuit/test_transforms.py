"""Tests for the circuit transformation passes."""

from __future__ import annotations

import pytest

from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind
from repro.circuit.transforms import (
    cancel_adjacent_inverses,
    clifford_t_summary,
    count_t_gates,
    decompose_multi_control,
    expand_swaps,
)
from repro.core.equivalence import circuits_equivalent

from tests.conftest import assert_states_close, build_circuit_from_ops, random_ops


class TestExpandSwaps:
    def test_swap_becomes_three_cnots(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        expanded = expand_swaps(circuit)
        assert [gate.kind for gate in expanded] == [GateKind.CX] * 3

    def test_fredkin_becomes_cnot_toffoli_cnot(self):
        circuit = QuantumCircuit(3).cswap([0], 1, 2)
        expanded = expand_swaps(circuit)
        assert [gate.kind for gate in expanded] == [GateKind.CX, GateKind.CCX, GateKind.CX]

    @pytest.mark.parametrize("seed", range(4))
    def test_expansion_preserves_semantics(self, seed):
        ops = random_ops(4, 20, seed + 60, mnemonics=("h", "t", "swap", "cswap", "cx"))
        circuit = build_circuit_from_ops(4, ops)
        expanded = expand_swaps(circuit)
        assert_states_close(StatevectorSimulator.simulate(circuit).state,
                            StatevectorSimulator.simulate(expanded).state)

    def test_measurements_preserved(self):
        circuit = QuantumCircuit(2).swap(0, 1).measure(1)
        assert expand_swaps(circuit).measured_qubits == [1]


class TestDecomposeMultiControl:
    def test_small_gates_pass_through(self):
        circuit = QuantumCircuit(3).ccx([0, 1], 2).cx(0, 1)
        decomposed = decompose_multi_control(circuit)
        assert decomposed.num_qubits == 3
        assert decomposed.gates == circuit.gates

    def test_three_controls_use_one_ancilla(self):
        circuit = QuantumCircuit(4).ccx([0, 1, 2], 3)
        decomposed = decompose_multi_control(circuit)
        assert decomposed.num_qubits == 5
        assert all(len(gate.controls) <= 2 for gate in decomposed)

    @pytest.mark.parametrize("num_controls", [3, 4, 5])
    def test_functionality_preserved(self, num_controls):
        from repro.core.equivalence import states_equal_exact

        num_qubits = num_controls + 1
        circuit = QuantumCircuit(num_qubits).ccx(list(range(num_controls)), num_controls)
        decomposed = decompose_multi_control(circuit)
        padded = QuantumCircuit(decomposed.num_qubits, name="padded")
        for gate in circuit.gates:
            padded.append(gate)
        # Equivalence holds on every input whose ancillas (the appended,
        # least-significant qubits) start in |0>, which is the construction's
        # contract.
        ancilla_shift = decomposed.num_qubits - num_qubits
        for basis in range(1 << num_qubits):
            padded_basis = basis << ancilla_shift
            assert states_equal_exact(padded, decomposed, initial_state=padded_basis)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            decompose_multi_control(QuantumCircuit(2).x(0), max_controls=1)


class TestCancelAdjacentInverses:
    def test_simple_cancellations(self):
        circuit = QuantumCircuit(2).h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1)
        assert cancel_adjacent_inverses(circuit).num_gates == 0

    def test_s_sdg_and_t_tdg_cancel(self):
        circuit = QuantumCircuit(1).s(0).sdg(0).t(0).tdg(0).tdg(0).t(0)
        assert cancel_adjacent_inverses(circuit).num_gates == 0

    def test_cascaded_cancellation(self):
        # h x x h collapses completely only after two passes.
        circuit = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert cancel_adjacent_inverses(circuit).num_gates == 0

    def test_different_wires_do_not_cancel(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        assert cancel_adjacent_inverses(circuit).num_gates == 2

    def test_non_inverse_pairs_survive(self):
        circuit = QuantumCircuit(1).s(0).s(0)
        assert cancel_adjacent_inverses(circuit).num_gates == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_cancellation_preserves_semantics(self, seed):
        circuit = build_circuit_from_ops(3, random_ops(3, 30, seed + 71))
        optimised = cancel_adjacent_inverses(circuit)
        assert optimised.num_gates <= circuit.num_gates
        assert_states_close(StatevectorSimulator.simulate(circuit).state,
                            StatevectorSimulator.simulate(optimised).state)

    def test_control_order_is_irrelevant(self):
        circuit = QuantumCircuit(3)
        circuit.ccx([0, 1], 2).ccx([1, 0], 2)
        assert cancel_adjacent_inverses(circuit).num_gates == 0


class TestCostMetrics:
    def test_count_t_gates(self):
        circuit = QuantumCircuit(2).t(0).tdg(1).t(0).h(1)
        assert count_t_gates(circuit) == 3

    def test_clifford_t_summary(self):
        circuit = QuantumCircuit(3).h(0).t(0).cx(0, 1).ccx([0, 1], 2).tdg(2)
        summary = clifford_t_summary(circuit)
        assert summary == {"clifford": 2, "t_like": 2, "other_non_clifford": 1}

"""Tests for the RevLib ``.real`` format reader / writer."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind
from repro.circuit.real_format import (
    RealFormatError,
    circuit_from_real,
    circuit_to_real,
    initial_basis_state,
    unspecified_inputs,
)


SAMPLE = """
# a small example in RevLib syntax
.version 2.0
.numvars 4
.variables a b c d
.inputs a b c d
.outputs a b c d
.constants --0-
.garbage ----
.begin
t1 a
t2 a b
t3 a b c
f3 a c d
p3 b c d
.end
"""


class TestReader:
    def test_parse_sample(self):
        circuit, constants = circuit_from_real(SAMPLE, name="sample")
        assert circuit.num_qubits == 4
        assert constants == "--0-"
        kinds = [gate.kind for gate in circuit]
        # t1 -> X, t2 -> CX, t3 -> CCX, f3 -> CSWAP, p3 -> CCX + CX.
        assert kinds == [GateKind.X, GateKind.CX, GateKind.CCX, GateKind.CSWAP,
                         GateKind.CCX, GateKind.CX]

    def test_operand_mapping(self):
        circuit, _ = circuit_from_real(SAMPLE)
        toffoli = circuit[2]
        assert toffoli.controls == (0, 1)
        assert toffoli.targets == (2,)
        fredkin = circuit[3]
        assert fredkin.controls == (0,)
        assert fredkin.targets == (2, 3)

    def test_missing_numvars_uses_variables(self):
        text = ".variables x y\n.begin\nt2 x y\n.end\n"
        circuit, constants = circuit_from_real(text)
        assert circuit.num_qubits == 2
        assert constants == "--"

    def test_missing_header_rejected(self):
        with pytest.raises(RealFormatError):
            circuit_from_real(".begin\nt1 a\n.end\n")

    def test_unknown_variable_rejected(self):
        text = ".numvars 1\n.variables a\n.begin\nt2 a z\n.end\n"
        with pytest.raises(RealFormatError):
            circuit_from_real(text)

    def test_v_gates_rejected(self):
        text = ".numvars 2\n.variables a b\n.begin\nv a b\n.end\n"
        with pytest.raises(RealFormatError):
            circuit_from_real(text)

    def test_f2_is_swap(self):
        text = ".numvars 2\n.variables a b\n.begin\nf2 a b\n.end\n"
        circuit, _ = circuit_from_real(text)
        assert circuit[0].kind is GateKind.SWAP

    def test_constants_length_mismatch_rejected(self):
        text = ".numvars 2\n.variables a b\n.constants 0\n.begin\nt1 a\n.end\n"
        with pytest.raises(RealFormatError):
            circuit_from_real(text)


class TestWriter:
    def test_round_trip(self):
        circuit = QuantumCircuit(4, name="rt")
        circuit.x(0).cx(0, 1).ccx([0, 1], 2).cswap([0], 2, 3).swap(1, 3)
        text = circuit_to_real(circuit, constants="--00")
        parsed, constants = circuit_from_real(text)
        assert constants == "--00"
        assert parsed.num_qubits == 4
        assert [gate.kind for gate in parsed] == [gate.kind for gate in circuit]
        for original, round_tripped in zip(circuit, parsed):
            assert original.targets == round_tripped.targets
            assert original.controls == round_tripped.controls

    def test_non_classical_gate_rejected(self):
        with pytest.raises(RealFormatError):
            circuit_to_real(QuantumCircuit(1).h(0))

    def test_bad_constants_rejected(self):
        with pytest.raises(RealFormatError):
            circuit_to_real(QuantumCircuit(2).x(0), constants="-")


class TestConstantsHelpers:
    def test_unspecified_inputs(self):
        assert unspecified_inputs("--0-1") == [0, 1, 3]
        assert unspecified_inputs("01") == []

    def test_initial_basis_state_defaults(self):
        # Qubit 0 is the most significant bit.
        assert initial_basis_state("01--") == 0b0100
        assert initial_basis_state("1-1-") == 0b1010

    def test_initial_basis_state_with_random_bits(self):
        assert initial_basis_state("-0-", random_bits=[1, 1]) == 0b101
        assert initial_basis_state("-0-", random_bits=[0, 1]) == 0b001

    def test_invalid_constant_character(self):
        with pytest.raises(RealFormatError):
            initial_basis_state("0x1")

"""Unit tests for the QuantumCircuit container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind


class TestConstruction:
    def test_requires_positive_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_default_name(self):
        assert QuantumCircuit(3).name == "circuit_3q"
        assert QuantumCircuit(3, name="bell").name == "bell"

    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).t(2).toffoli(0, 1, 2)
        assert circuit.num_gates == 4
        kinds = [gate.kind for gate in circuit]
        assert kinds == [GateKind.H, GateKind.CX, GateKind.T, GateKind.CCX]

    def test_every_builder_produces_expected_kind(self):
        circuit = QuantumCircuit(4)
        circuit.x(0).y(1).z(2).h(3).s(0).sdg(1).t(2).tdg(3)
        circuit.rx_pi_2(0).ry_pi_2(1)
        circuit.cx(0, 1).cz(1, 2).swap(2, 3)
        circuit.ccx([0, 1], 2).cswap([0], 1, 2).fredkin(3, 0, 1)
        expected = ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx_pi_2",
                    "ry_pi_2", "cx", "cz", "swap", "ccx", "cswap", "cswap"]
        assert [gate.kind.value for gate in circuit] == expected

    def test_out_of_range_qubits_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.h(2)
        with pytest.raises(ValueError):
            circuit.cx(0, 5)
        with pytest.raises(ValueError):
            circuit.append(Gate(GateKind.X, (7,)))

    def test_measure_tracking(self):
        circuit = QuantumCircuit(3).h(0)
        circuit.measure(1).measure(1).measure(0)
        assert circuit.measured_qubits == [1, 0]
        circuit.measure_all()
        assert sorted(circuit.measured_qubits) == [0, 1, 2]


class TestInspection:
    def test_gate_counts(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1).t(0)
        assert circuit.gate_counts() == {"h": 2, "cx": 1, "t": 1}
        assert circuit.num_gates == 4
        assert len(circuit) == 4

    def test_two_qubit_gate_count(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx([0, 1], 2).z(2)
        assert circuit.num_two_qubit_gates() == 2

    def test_depth(self):
        circuit = QuantumCircuit(3)
        assert circuit.depth() == 0
        circuit.h(0).h(1).h(2)          # depth 1: all parallel
        assert circuit.depth() == 1
        circuit.cx(0, 1)                # depth 2
        circuit.cx(1, 2)                # depth 3
        circuit.x(0)                    # still depth 3 (parallel with cx(1,2))
        assert circuit.depth() == 3

    def test_is_clifford(self):
        assert QuantumCircuit(2).h(0).cx(0, 1).s(1).is_clifford()
        assert not QuantumCircuit(2).h(0).t(1).is_clifford()
        assert not QuantumCircuit(3).ccx([0, 1], 2).is_clifford()

    def test_uses_only_paper_gates(self):
        assert QuantumCircuit(2).h(0).t(0).cx(0, 1).uses_only_paper_gates()
        assert not QuantumCircuit(2).sdg(0).uses_only_paper_gates()
        assert not QuantumCircuit(2).swap(0, 1).uses_only_paper_gates()

    def test_is_reversible_classical(self):
        assert QuantumCircuit(3).x(0).cx(0, 1).ccx([0, 1], 2).is_reversible_classical()
        assert not QuantumCircuit(2).h(0).is_reversible_classical()

    def test_qubits_touched(self):
        circuit = QuantumCircuit(5).h(1).cx(1, 3)
        assert circuit.qubits_touched() == [1, 3]

    def test_indexing_and_iteration(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert circuit[0].kind is GateKind.H
        assert circuit[-1].kind is GateKind.CX
        assert [gate.kind for gate in circuit] == [GateKind.H, GateKind.CX]

    def test_summary_contains_counts(self):
        summary = QuantumCircuit(2, name="bell").h(0).cx(0, 1).summary()
        assert "bell" in summary
        assert "2 qubits" in summary
        assert "h:1" in summary and "cx:1" in summary

    def test_repr(self):
        assert "num_qubits=2" in repr(QuantumCircuit(2).h(0))


class TestCombination:
    def test_compose(self):
        first = QuantumCircuit(3, name="a").h(0)
        second = QuantumCircuit(2, name="b").cx(0, 1)
        combined = first.compose(second)
        assert combined.num_qubits == 3
        assert [gate.kind for gate in combined] == [GateKind.H, GateKind.CX]

    def test_compose_larger_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(2).h(0).s(0).cx(0, 1).t(1)
        inverse = circuit.inverse()
        kinds = [gate.kind for gate in inverse]
        assert kinds == [GateKind.TDG, GateKind.CX, GateKind.SDG, GateKind.H]

    def test_inverse_round_trip_is_identity(self):
        from repro.baselines.statevector import StatevectorSimulator

        circuit = QuantumCircuit(3).h(0).s(1).cx(0, 1).t(2).ccx([0, 1], 2)
        round_trip = circuit.compose(circuit.inverse())
        state = StatevectorSimulator.simulate(round_trip).state
        expected = np.zeros(8, dtype=complex)
        expected[0] = 1.0
        assert np.max(np.abs(state - expected)) < 1e-12

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2).h(0)
        duplicate = circuit.copy()
        duplicate.x(1)
        assert circuit.num_gates == 1
        assert duplicate.num_gates == 2
        assert circuit == circuit.copy()

    def test_equality(self):
        assert QuantumCircuit(2).h(0) == QuantumCircuit(2).h(0)
        assert QuantumCircuit(2).h(0) != QuantumCircuit(2).h(1)
        assert QuantumCircuit(2).h(0) != QuantumCircuit(3).h(0)

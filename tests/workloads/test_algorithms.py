"""Tests for the quantum algorithm workloads (Table V plus extensions)."""

from __future__ import annotations

import pytest

from repro.circuit.gates import GateKind
from repro.core.simulator import BitSliceSimulator
from repro.workloads.algorithms import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    grover_sat_circuit,
    hidden_shift_circuit,
)


class TestGhz:
    def test_gate_count_matches_paper_column(self):
        # Table V lists #gates == #qubits for the entanglement family.
        for num_qubits in (1, 5, 80):
            assert ghz_circuit(num_qubits).num_gates == num_qubits

    def test_state_is_ghz(self):
        simulator = BitSliceSimulator.simulate(ghz_circuit(4))
        distribution = simulator.measurement_distribution()
        assert distribution == {0: pytest.approx(0.5), 0b1111: pytest.approx(0.5)}

    def test_is_clifford(self):
        assert ghz_circuit(10).is_clifford()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ghz_circuit(0)


class TestBernsteinVazirani:
    def test_gate_count_matches_paper_column(self):
        # The paper's 80-qubit row lists 239 gates (79 data qubits, all-ones
        # hidden string): 79 H + X + H + 79 CX + 79 H = 239.
        circuit = bernstein_vazirani_circuit(79)
        assert circuit.num_qubits == 80
        assert circuit.num_gates == 239

    @pytest.mark.parametrize("hidden", [0, 1, 0b1010, 0b0110, 0b1111])
    def test_recovers_hidden_string_exactly(self, hidden):
        num_data = 4
        circuit = bernstein_vazirani_circuit(num_data, hidden_string=hidden)
        simulator = BitSliceSimulator.simulate(circuit)
        bits = [(hidden >> (num_data - 1 - q)) & 1 for q in range(num_data)]
        assert simulator.probability_of_outcome(list(range(num_data)), bits) == \
            pytest.approx(1.0, abs=1e-12)

    def test_measured_qubits_are_the_data_register(self):
        circuit = bernstein_vazirani_circuit(5)
        assert circuit.measured_qubits == list(range(5))

    def test_oracle_size_matches_hidden_weight(self):
        circuit = bernstein_vazirani_circuit(6, hidden_string=0b101001)
        assert circuit.gate_counts()["cx"] == 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(0)
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(3, hidden_string=8)


class TestHiddenShift:
    def test_recovers_shift(self):
        shift = 0b101101
        circuit = hidden_shift_circuit(6, shift=shift)
        simulator = BitSliceSimulator.simulate(circuit)
        bits = [(shift >> (5 - q)) & 1 for q in range(6)]
        assert simulator.probability_of_outcome(list(range(6)), bits) == \
            pytest.approx(1.0, abs=1e-12)

    def test_is_clifford(self):
        assert hidden_shift_circuit(4, shift=0b0110).is_clifford()

    def test_requires_even_width(self):
        with pytest.raises(ValueError):
            hidden_shift_circuit(5)

    def test_random_shift_is_deterministic_by_seed(self):
        assert hidden_shift_circuit(6, seed=3) == hidden_shift_circuit(6, seed=3)


class TestGrover:
    def test_amplifies_marked_state(self):
        marked = 0b101
        circuit = grover_sat_circuit(3, marked_state=marked)
        simulator = BitSliceSimulator.simulate(circuit)
        distribution = simulator.measurement_distribution()
        assert max(distribution, key=distribution.get) == marked
        assert distribution[marked] > 0.8

    def test_uses_only_supported_gates(self):
        circuit = grover_sat_circuit(4, marked_state=7)
        kinds = {gate.kind for gate in circuit}
        assert kinds <= {GateKind.H, GateKind.X, GateKind.CX, GateKind.CCX}

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            grover_sat_circuit(1)
        with pytest.raises(ValueError):
            grover_sat_circuit(3, marked_state=8)

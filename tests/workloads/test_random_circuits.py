"""Tests for the Table III random circuit generator."""

from __future__ import annotations

import pytest

from repro.circuit.gates import GateKind
from repro.workloads.random_circuits import (
    DEFAULT_GATE_POOL,
    generate_random_circuit,
    random_circuit_suite,
)


class TestGenerator:
    def test_gate_count_follows_paper_ratio(self):
        circuit = generate_random_circuit(20, seed=1)
        # H prologue (20 gates) + 3 * 20 random gates.
        assert circuit.num_gates == 20 + 60

    def test_h_prologue_present(self):
        circuit = generate_random_circuit(10, seed=2)
        for qubit in range(10):
            gate = circuit[qubit]
            assert gate.kind is GateKind.H
            assert gate.targets == (qubit,)

    def test_prologue_can_be_disabled(self):
        circuit = generate_random_circuit(10, num_gates=5, seed=3, h_prologue=False)
        assert circuit.num_gates == 5

    def test_default_pool_excludes_rx_ry(self):
        assert GateKind.RX_PI_2 not in DEFAULT_GATE_POOL
        assert GateKind.RY_PI_2 not in DEFAULT_GATE_POOL
        circuit = generate_random_circuit(30, seed=4)
        used = {gate.kind for gate in circuit}
        assert GateKind.RX_PI_2 not in used
        assert GateKind.RY_PI_2 not in used

    def test_deterministic_by_seed(self):
        assert generate_random_circuit(12, seed=9) == generate_random_circuit(12, seed=9)
        assert generate_random_circuit(12, seed=9) != generate_random_circuit(12, seed=10)

    def test_restricted_pool(self):
        circuit = generate_random_circuit(8, seed=5, gate_pool=(GateKind.CX,))
        body = list(circuit)[8:]
        assert all(gate.kind is GateKind.CX for gate in body)

    def test_qubits_within_range(self):
        circuit = generate_random_circuit(15, seed=6)
        for gate in circuit:
            assert all(0 <= qubit < 15 for qubit in gate.qubits)

    def test_small_registers_degrade_gracefully(self):
        circuit = generate_random_circuit(2, seed=7)
        assert circuit.num_qubits == 2
        for gate in circuit:
            assert len(gate.qubits) <= 2

    def test_validity_on_paper_gate_set(self):
        circuit = generate_random_circuit(10, seed=8)
        assert circuit.uses_only_paper_gates()


class TestSuite:
    def test_suite_size_and_composition(self):
        suite = random_circuit_suite([4, 6], circuits_per_size=3)
        assert len(suite) == 6
        assert sorted({circuit.num_qubits for circuit in suite}) == [4, 6]

    def test_suite_is_deterministic(self):
        first = random_circuit_suite([5], circuits_per_size=2, base_seed=7)
        second = random_circuit_suite([5], circuits_per_size=2, base_seed=7)
        assert first == second

    def test_suite_uses_distinct_seeds(self):
        suite = random_circuit_suite([5], circuits_per_size=4)
        assert len({tuple(circuit.gates) for circuit in suite}) == 4

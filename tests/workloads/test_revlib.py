"""Tests for the RevLib-style reversible circuit families (Table IV)."""

from __future__ import annotations

import pytest

from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GateKind
from repro.core.simulator import BitSliceSimulator
from repro.workloads.revlib import (
    REVLIB_FAMILIES,
    alu_circuit,
    control_unit_circuit,
    generate_revlib_circuit,
    h_augment,
    nested_if_circuit,
    parity_cascade_circuit,
    register_file_circuit,
    revlib_suite,
    ripple_carry_adder,
    toffoli_chain_circuit,
)


def run_classically(circuit: QuantumCircuit, input_index: int) -> int:
    """Run a reversible circuit on a basis state and return the output index."""
    simulator = BitSliceSimulator.simulate(circuit, initial_state=input_index)
    distribution = simulator.measurement_distribution()
    assert len(distribution) == 1
    return next(iter(distribution))


class TestAdder:
    def test_structure(self):
        circuit, constants = ripple_carry_adder(4)
        assert circuit.num_qubits == 10
        assert circuit.is_reversible_classical()
        assert constants[0] == "0" and constants[-1] == "0"
        assert constants.count("-") == 8

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 5), (7, 7), (6, 2)])
    def test_addition_is_correct(self, a, b):
        num_bits = 3
        circuit, _ = ripple_carry_adder(num_bits)
        # Wire layout: carry-in, a (LSB first), b (LSB first), carry-out.
        index = 0
        for bit in range(num_bits):
            if (a >> bit) & 1:
                index |= 1 << (circuit.num_qubits - 1 - (1 + bit))
            if (b >> bit) & 1:
                index |= 1 << (circuit.num_qubits - 1 - (1 + num_bits + bit))
        output = run_classically(circuit, index)
        # Decode the b register and carry-out from the output index.
        total = 0
        for bit in range(num_bits):
            if (output >> (circuit.num_qubits - 1 - (1 + num_bits + bit))) & 1:
                total |= 1 << bit
        if (output >> 0) & 1:  # carry-out is the last wire -> LSB of index
            total |= 1 << num_bits
        assert total == a + b

    def test_adder_preserves_a_register(self):
        num_bits = 3
        circuit, _ = ripple_carry_adder(num_bits)
        a, b = 5, 3
        index = 0
        for bit in range(num_bits):
            if (a >> bit) & 1:
                index |= 1 << (circuit.num_qubits - 1 - (1 + bit))
            if (b >> bit) & 1:
                index |= 1 << (circuit.num_qubits - 1 - (1 + num_bits + bit))
        output = run_classically(circuit, index)
        recovered_a = 0
        for bit in range(num_bits):
            if (output >> (circuit.num_qubits - 1 - (1 + bit))) & 1:
                recovered_a |= 1 << bit
        assert recovered_a == a

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestOtherFamilies:
    def test_alu_structure(self):
        circuit, constants = alu_circuit(4)
        assert circuit.num_qubits == 10
        assert circuit.is_reversible_classical()
        assert constants == "-" * 10

    def test_control_unit_is_a_decoder(self):
        circuit, constants = control_unit_circuit(2)
        assert circuit.num_qubits == 6
        # For opcode value 2 (binary 10), output line 2 must be asserted.
        opcode = 0b10
        index = opcode << 4
        output = run_classically(circuit, index)
        outputs = output & 0b1111
        assert outputs == 0b0010  # output line 2 (counting from line 0 = MSB side)

    def test_control_unit_asserts_exactly_one_line_per_opcode(self):
        circuit, _ = control_unit_circuit(2)
        for opcode in range(4):
            output = run_classically(circuit, opcode << 4)
            outputs = output & 0b1111
            assert bin(outputs).count("1") == 1

    def test_register_file_moves_data(self):
        circuit, constants = register_file_circuit(2, 2)
        assert circuit.is_reversible_classical()
        assert circuit.num_qubits == 1 + 2 + 2 * 2
        assert constants.count("0") == 4

    def test_nested_if(self):
        circuit, constants = nested_if_circuit(3)
        assert circuit.num_qubits == 6
        assert constants == "---000"
        # With all conditions true, every output line toggles.
        output = run_classically(circuit, 0b111000)
        assert output & 0b000111 == 0b000111

    def test_parity_cascade(self):
        circuit, constants = parity_cascade_circuit(5)
        assert circuit.num_qubits == 7
        # Parity of 0b10110 (three ones) is 1.
        output = run_classically(circuit, 0b10110_00)
        parity_bit = (output >> 1) & 1
        assert parity_bit == 1

    def test_toffoli_chain(self):
        circuit, constants = toffoli_chain_circuit(5)
        assert circuit.num_qubits == 7
        assert len(constants) == 7
        assert circuit.is_reversible_classical()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            alu_circuit(0)
        with pytest.raises(ValueError):
            control_unit_circuit(0)
        with pytest.raises(ValueError):
            register_file_circuit(1, 2)
        with pytest.raises(ValueError):
            nested_if_circuit(0)
        with pytest.raises(ValueError):
            parity_cascade_circuit(1)
        with pytest.raises(ValueError):
            toffoli_chain_circuit(1)


class TestHAugmentation:
    def test_h_added_on_unspecified_inputs_only(self):
        circuit, constants = ripple_carry_adder(2)
        modified = h_augment(circuit, constants)
        h_targets = [gate.targets[0] for gate in modified if gate.kind is GateKind.H]
        expected = [index for index, flag in enumerate(constants) if flag == "-"]
        assert h_targets == expected
        assert modified.num_gates == circuit.num_gates + len(expected)

    def test_fixed_one_inputs_get_x(self):
        circuit = QuantumCircuit(3).cx(0, 1)
        modified = h_augment(circuit, "1-0")
        kinds = [gate.kind for gate in modified][:2]
        assert kinds == [GateKind.X, GateKind.H]

    def test_bad_constants_rejected(self):
        circuit = QuantumCircuit(2).x(0)
        with pytest.raises(ValueError):
            h_augment(circuit, "-")
        with pytest.raises(ValueError):
            h_augment(circuit, "-z")

    def test_modified_circuit_is_quantum(self):
        circuit, constants = ripple_carry_adder(2)
        modified = h_augment(circuit, constants)
        assert not modified.is_reversible_classical()
        # The modified circuit still has unit norm and a uniform input
        # superposition over the unspecified inputs.
        simulator = BitSliceSimulator.simulate(modified)
        assert simulator.total_probability() == pytest.approx(1.0, abs=1e-12)


class TestSuiteAssembly:
    def test_all_registered_families_generate(self):
        for name in REVLIB_FAMILIES:
            circuit, constants = generate_revlib_circuit(name)
            assert circuit.num_qubits == len(constants)
            assert circuit.is_reversible_classical()

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            generate_revlib_circuit("does_not_exist")

    def test_suite_contains_both_variants(self):
        suite = revlib_suite(["add8", "nested_if6"])
        assert len(suite) == 2
        for name, original, modified, constants in suite:
            assert modified.num_gates > original.num_gates
            assert original.is_reversible_classical()
            assert not modified.is_reversible_classical()

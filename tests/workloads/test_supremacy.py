"""Tests for the GRCS supremacy circuit generator (Table VI)."""

from __future__ import annotations

import pytest

from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.gates import GateKind
from repro.workloads.supremacy import (
    TABLE6_LATTICES,
    _cz_layer,
    grcs_circuit,
    supremacy_suite,
)


class TestCzLayers:
    @pytest.mark.parametrize("pattern", range(8))
    def test_pairs_are_lattice_neighbours(self, pattern):
        rows, columns = 4, 5
        for a, b in _cz_layer(rows, columns, pattern):
            row_a, col_a = divmod(a, columns)
            row_b, col_b = divmod(b, columns)
            assert abs(row_a - row_b) + abs(col_a - col_b) == 1

    @pytest.mark.parametrize("pattern", range(8))
    def test_pairs_are_disjoint(self, pattern):
        touched = [qubit for pair in _cz_layer(4, 5, pattern) for qubit in pair]
        assert len(touched) == len(set(touched))

    def test_all_patterns_together_cover_every_edge_direction(self):
        horizontal = set()
        vertical = set()
        for pattern in range(8):
            for a, b in _cz_layer(3, 3, pattern):
                if abs(a - b) == 1:
                    horizontal.add((a, b))
                else:
                    vertical.add((a, b))
        assert horizontal and vertical


class TestGenerator:
    def test_first_cycle_is_all_hadamards(self):
        circuit = grcs_circuit(3, 3, depth=4, seed=0)
        first_layer = list(circuit)[:9]
        assert all(gate.kind is GateKind.H for gate in first_layer)
        assert sorted(gate.targets[0] for gate in first_layer) == list(range(9))

    def test_qubit_count_matches_lattice(self):
        circuit = grcs_circuit(4, 5, depth=3)
        assert circuit.num_qubits == 20

    def test_only_grcs_gates_used(self):
        circuit = grcs_circuit(4, 4, depth=6, seed=2)
        allowed = {GateKind.H, GateKind.CZ, GateKind.T, GateKind.RX_PI_2, GateKind.RY_PI_2}
        assert {gate.kind for gate in circuit} <= allowed

    def test_first_single_qubit_gate_after_h_is_t(self):
        circuit = grcs_circuit(4, 4, depth=6, seed=3)
        first_single = {}
        for gate in list(circuit)[16:]:
            if gate.kind in (GateKind.T, GateKind.RX_PI_2, GateKind.RY_PI_2):
                qubit = gate.targets[0]
                first_single.setdefault(qubit, gate.kind)
        assert all(kind is GateKind.T for kind in first_single.values())

    def test_deterministic_by_seed(self):
        assert grcs_circuit(4, 4, depth=5, seed=7) == grcs_circuit(4, 4, depth=5, seed=7)
        assert grcs_circuit(4, 4, depth=5, seed=7) != grcs_circuit(4, 4, depth=5, seed=8)

    def test_depth_zero_is_just_the_h_layer(self):
        circuit = grcs_circuit(2, 3, depth=0)
        assert circuit.num_gates == 6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grcs_circuit(0, 3)
        with pytest.raises(ValueError):
            grcs_circuit(2, 2, depth=-1)

    def test_state_norm_is_preserved(self):
        circuit = grcs_circuit(3, 3, depth=4, seed=5)
        simulator = StatevectorSimulator.simulate(circuit)
        assert simulator.norm() == pytest.approx(1.0, abs=1e-10)


class TestSuite:
    def test_lattice_table_matches_paper_sizes(self):
        assert set(TABLE6_LATTICES) == {16, 20, 25, 30, 36, 42, 49, 56, 64, 72, 81, 90}
        for count, (rows, columns) in TABLE6_LATTICES.items():
            assert rows * columns == count

    def test_suite_generation(self):
        suite = supremacy_suite([16, 20], circuits_per_size=2, depth=4)
        assert len(suite) == 4
        assert {circuit.num_qubits for circuit in suite} == {16, 20}
        for circuit in suite:
            assert circuit.depth() >= 4

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            supremacy_suite([17])

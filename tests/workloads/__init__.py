"""Test package."""

"""Tests for the capability-aware registry: aliases, registration rules and
the ``"auto"`` selector."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.engines import (
    Capabilities,
    Engine,
    ResourceLimits,
    UnknownEngineError,
    available_engines,
    engine_aliases,
    engine_capabilities,
    engine_labels,
    register_engine,
    resolve_engine,
    resolve_engine_name,
    select_engine,
    unregister_engine,
)
from repro.engines.base import ALL_GATE_KINDS
from repro.workloads.algorithms import bernstein_vazirani_circuit, ghz_circuit


def t_layer_circuit(num_qubits: int) -> QuantumCircuit:
    """A wide non-Clifford circuit (H prologue + T layer)."""
    circuit = QuantumCircuit(num_qubits, name=f"tlayer_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        circuit.t(qubit)
    return circuit


class TestRegistry:
    def test_builtin_engines_present(self):
        assert {"bitslice", "qmdd", "statevector", "stabilizer"} <= set(available_engines())

    @pytest.mark.parametrize("alias,canonical", [
        ("bdd", "bitslice"),
        ("sliqsim", "bitslice"),
        ("ddsim", "qmdd"),
        ("dense", "statevector"),
        ("sv", "statevector"),
        ("chp", "stabilizer"),
        ("tableau", "stabilizer"),
    ])
    def test_alias_resolution(self, alias, canonical):
        assert resolve_engine_name(alias) == canonical
        assert engine_aliases()[alias] == canonical

    def test_unknown_engine_raises(self):
        with pytest.raises(UnknownEngineError):
            resolve_engine_name("definitely-not-an-engine")

    def test_unknown_engine_is_a_keyerror(self):
        # Back-compat: pre-redesign callers caught KeyError.
        with pytest.raises(KeyError):
            resolve_engine_name("definitely-not-an-engine")

    def test_labels_from_capabilities(self):
        labels = engine_labels()
        assert labels["bitslice"] == "Ours (bit-sliced BDD)"
        assert labels["stabilizer"] == "CHP stabilizer"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_engine("bitslice")
            class Clash(Engine):  # pragma: no cover - never instantiated
                capabilities = Capabilities(
                    name="bitslice", label="clash",
                    supported_gates=ALL_GATE_KINDS, exact=True)

    def test_auto_name_reserved(self):
        with pytest.raises(ValueError):
            register_engine("auto")

    def test_capabilities_required(self):
        with pytest.raises(TypeError):
            @register_engine("capless")
            class Capless(Engine):  # pragma: no cover - never instantiated
                pass

    def test_register_and_unregister_custom_engine(self):
        @register_engine("custom-test", aliases=("ct",))
        class CustomEngine(Engine):
            capabilities = Capabilities(
                name="custom-test", label="Custom",
                supported_gates=ALL_GATE_KINDS, exact=False,
                selection_priority=99)

            def prepare(self, circuit, limits=None):
                super().prepare(circuit, limits)
                self._n = circuit.num_qubits

            def apply(self, gate):
                self._count_gate(gate)

            def probability(self, qubits, bits):
                return 1.0

            def memory_nodes(self):
                return 1

            @property
            def num_qubits(self):
                return self._n

        try:
            assert "custom-test" in available_engines()
            assert resolve_engine_name("ct") == "custom-test"
            assert engine_capabilities("custom-test").selection_priority == 99
        finally:
            unregister_engine("custom-test")
        assert "custom-test" not in available_engines()
        with pytest.raises(UnknownEngineError):
            resolve_engine_name("ct")


class TestAutoSelection:
    def test_pure_clifford_picks_stabilizer(self):
        # The acceptance case: a pure-Clifford GHZ circuit lands on the
        # polynomial-time tableau regardless of size.
        assert select_engine(ghz_circuit(8)) == "stabilizer"
        assert select_engine(ghz_circuit(100)) == "stabilizer"

    def test_small_nonclifford_picks_statevector(self):
        circuit = t_layer_circuit(6)
        limits = ResourceLimits(max_dense_qubits=24)
        assert select_engine(circuit, limits) == "statevector"

    def test_wide_nonclifford_picks_bitslice(self):
        circuit = t_layer_circuit(40)
        limits = ResourceLimits(max_dense_qubits=24)
        assert select_engine(circuit, limits) == "bitslice"

    def test_dense_cutoff_respects_limits(self):
        circuit = t_layer_circuit(10)
        assert select_engine(circuit, ResourceLimits(max_dense_qubits=9)) == "bitslice"
        assert select_engine(circuit, ResourceLimits(max_dense_qubits=10)) == "statevector"

    def test_dense_engine_never_picked_into_a_guaranteed_memout(self):
        # Regression: a 22-qubit non-Clifford circuit is under the dense
        # qubit cutoff, but the fixed 2**22 footprint exceeds the default
        # 500k node budget — auto must not pick an engine that would MO on
        # its very first limit check.
        circuit = t_layer_circuit(22)
        limits = ResourceLimits(max_seconds=60.0, max_nodes=500_000,
                                max_dense_qubits=24)
        assert select_engine(circuit, limits) == "bitslice"
        # With the budget lifted the dense engine is eligible again.
        roomy = ResourceLimits(max_seconds=60.0, max_nodes=None,
                               max_dense_qubits=24)
        assert select_engine(circuit, roomy) == "statevector"

    def test_clifford_bv_picks_stabilizer(self):
        # Bernstein-Vazirani is H/X/CX only, hence Clifford.
        assert select_engine(bernstein_vazirani_circuit(12)) == "stabilizer"

    def test_resolve_engine_passthrough_and_auto(self):
        circuit = ghz_circuit(5)
        assert resolve_engine("auto", circuit) == "stabilizer"
        assert resolve_engine("ddsim", circuit) == "qmdd"

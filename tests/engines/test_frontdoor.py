"""Tests for the ``repro.run()`` front door and the parallel sweep executor.

Covers the redesign's acceptance criteria: ``engine="auto"`` lands on the
right backend per circuit profile, the unified limit wrapper enforces the
wall-clock budget on the dense engine (which historically ignored it), all
engines answer the same multi-qubit final query, and the parallel sweep is
byte-identical to the serial one on the quick Table III grid.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import QuantumCircuit, ResourceLimits
from repro.engines import run, run_sweep, run_tasks
from repro.harness.__main__ import QUICK_TABLE3_QUBITS
from repro.workloads.algorithms import ghz_circuit
from repro.workloads.random_circuits import generate_random_circuit

LIMITS = ResourceLimits(max_seconds=60.0, max_nodes=200_000)


def t_layer_circuit(num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name=f"tlayer_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        circuit.t(qubit)
    return circuit


class TestRunFrontDoor:
    def test_package_level_run(self):
        result = repro.run(ghz_circuit(4), engine="bitslice", limits=LIMITS)
        assert result.succeeded
        assert result.final_probability == pytest.approx(0.5)

    def test_auto_selection_acceptance_matrix(self):
        # Pure-Clifford GHZ -> stabilizer.
        result = repro.run(ghz_circuit(6), engine="auto", limits=LIMITS)
        assert result.engine == "stabilizer"
        assert result.requested_engine == "auto"
        assert result.final_probability == pytest.approx(0.5)
        # Non-Clifford below the dense cutoff -> statevector.
        result = repro.run(t_layer_circuit(6), engine="auto", limits=LIMITS)
        assert result.engine == "statevector"
        # Non-Clifford above the dense cutoff -> bitslice.
        result = repro.run(t_layer_circuit(30), engine="auto", limits=LIMITS)
        assert result.engine == "bitslice"
        assert result.succeeded

    def test_aliases_accepted(self):
        result = run(ghz_circuit(3), engine="chp", limits=LIMITS)
        assert result.engine == "stabilizer"
        assert result.requested_engine == "chp"

    def test_statevector_wall_clock_enforced(self):
        # Regression: the dense engine ignored max_seconds entirely before
        # the unified LimitEnforcer; a zero budget must now classify as TO.
        circuit = generate_random_circuit(8, seed=5)
        result = run(circuit, engine="statevector",
                     limits=ResourceLimits(max_seconds=0.0))
        assert result.status == "TO"

    @pytest.mark.parametrize("engine", ["bitslice", "qmdd", "statevector", "stabilizer"])
    def test_all_engines_answer_the_full_final_query(self, engine):
        # Regression: the stabilizer runner used to cap the final query at
        # one qubit; all engines now answer the same joint query and agree.
        circuit = ghz_circuit(5)
        circuit.measure_all()
        result = run(circuit, engine=engine, limits=LIMITS)
        assert result.succeeded
        assert result.final_probability == pytest.approx(0.5, abs=1e-9)

    def test_stabilizer_zero_probability_outcome(self):
        # X|0> makes the all-zeros outcome impossible; the joint query must
        # say so instead of answering a single-qubit marginal.
        circuit = QuantumCircuit(3).x(0).h(1).cx(1, 2)
        result = run(circuit, engine="stabilizer", limits=LIMITS)
        assert result.succeeded
        assert result.final_probability == pytest.approx(0.0)

    def test_canonical_extra_has_no_legacy_keys(self):
        for engine in ("bitslice", "qmdd", "statevector", "stabilizer"):
            result = run(ghz_circuit(4), engine=engine, limits=LIMITS)
            for legacy in ("peak_bdd_nodes", "peak_dd_nodes", "tableau_bytes"):
                assert legacy not in result.extra

    def test_extra_does_not_shadow_first_class_fields(self):
        # The engine-internal clock differs slightly from the front door's;
        # only the first-class elapsed_seconds may appear in a run record.
        for engine in ("bitslice", "qmdd", "statevector", "stabilizer"):
            result = run(ghz_circuit(4), engine=engine, limits=LIMITS)
            assert "elapsed_seconds" not in result.extra
            assert "num_qubits" not in result.extra
            assert "peak_memory_nodes" not in result.extra


class TestSweep:
    def _quick_table3_grid(self):
        circuits = [generate_random_circuit(num_qubits,
                                            seed=1_000 * num_qubits + seed)
                    for num_qubits in QUICK_TABLE3_QUBITS
                    for seed in range(2)]
        return circuits

    def test_serial_sweep_order(self):
        circuits = [ghz_circuit(3), ghz_circuit(4)]
        results = run_sweep(circuits, engines=("bitslice", "qmdd"), limits=LIMITS)
        assert [(r.circuit_name, r.engine) for r in results] == [
            ("entanglement_3", "bitslice"), ("entanglement_3", "qmdd"),
            ("entanglement_4", "bitslice"), ("entanglement_4", "qmdd"),
        ]

    def test_parallel_sweep_matches_serial_byte_identically(self):
        # Acceptance: run_sweep(..., jobs=2) produces byte-identical
        # deterministic summaries to the serial path on the quick Table III
        # sweep (timings excluded — they are wall-clock, everything else is
        # bit-reproducible).
        circuits = self._quick_table3_grid()
        engines = ("qmdd", "bitslice")
        serial = run_sweep(circuits, engines=engines, limits=LIMITS, jobs=1)
        parallel = run_sweep(circuits, engines=engines, limits=LIMITS, jobs=2)
        serial_bytes = json.dumps([r.to_dict(timings=False) for r in serial],
                                  sort_keys=True).encode()
        parallel_bytes = json.dumps([r.to_dict(timings=False) for r in parallel],
                                    sort_keys=True).encode()
        assert serial_bytes == parallel_bytes

    def test_run_tasks_mixed_engines(self):
        tasks = [("stabilizer", ghz_circuit(4)),
                 ("auto", ghz_circuit(4)),
                 ("bitslice", t_layer_circuit(4))]
        results = run_tasks(tasks, limits=LIMITS, jobs=2)
        assert [r.engine for r in results] == ["stabilizer", "stabilizer", "bitslice"]
        assert all(r.succeeded for r in results)

    def test_parallel_experiment_grouping_matches_serial(self):
        from repro.harness.experiments import table3_experiment

        serial = table3_experiment(qubit_counts=(4, 6), circuits_per_size=2,
                                   limits=LIMITS, jobs=1)
        parallel = table3_experiment(qubit_counts=(4, 6), circuits_per_size=2,
                                     limits=LIMITS, jobs=2)
        assert list(serial.runs) == list(parallel.runs)
        for group in serial.runs:
            assert list(serial.runs[group]) == list(parallel.runs[group])
            for engine in serial.runs[group]:
                serial_results = serial.runs[group][engine]
                parallel_results = parallel.runs[group][engine]
                assert ([r.to_dict(timings=False) for r in serial_results]
                        == [r.to_dict(timings=False) for r in parallel_results])

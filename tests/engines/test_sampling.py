"""Cross-engine shot-sampling tests.

Pins the tentpole guarantees of the measurement & sampling subsystem:

* fixed-seed counts are byte-identical across *all* engines on Clifford
  circuits (shared descent + RNG protocol + probability snapping),
* repeated runs and serial-vs-parallel sweeps are byte-identical,
* the bit-sliced engine's exact slice sampler agrees with the dense
  statevector engine on <=12-qubit circuits (Clifford and non-Clifford),
* empirical counts pass a chi-squared test against the exact distribution.
"""

import json
import math

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.engines import create_engine, run, run_sweep
from repro.baselines.statevector import StatevectorSimulator
from tests.conftest import clifford_mix, universal_mix
from tests.conftest import ghz as _ghz

ALL_ENGINES = ("bitslice", "qmdd", "statevector", "stabilizer")


def ghz(n, name=None):
    """Measured GHZ — this module samples, so markers are always present."""
    return _ghz(n, name=name, measure=True)


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("circuit", [ghz(4), clifford_mix(5, 11),
                                         clifford_mix(6, 23)],
                             ids=lambda c: c.name)
    def test_clifford_counts_identical_across_all_engines(self, circuit):
        results = {engine: run(circuit, engine=engine, shots=1024, seed=42)
                   for engine in ALL_ENGINES}
        reference = results["bitslice"].counts
        assert sum(reference.values()) == 1024
        for engine, result in results.items():
            assert result.counts == reference, engine

    @pytest.mark.parametrize("seed", [3, 17])
    def test_bitslice_matches_statevector_on_universal_circuits(self, seed):
        circuit = universal_mix(6, seed)
        bdd = run(circuit, engine="bitslice", shots=2048, seed=seed)
        dense = run(circuit, engine="statevector", shots=2048, seed=seed)
        assert bdd.counts == dense.counts

    def test_bitslice_matches_statevector_at_twelve_qubits(self):
        circuit = universal_mix(12, 5)
        bdd = run(circuit, engine="bitslice", shots=512, seed=1)
        dense = run(circuit, engine="statevector", shots=512, seed=1)
        assert bdd.counts == dense.counts


class TestDeterminism:
    def test_repeated_runs_identical(self):
        circuit = universal_mix(5, 9)
        first = run(circuit, engine="bitslice", shots=1024, seed=0)
        second = run(circuit, engine="bitslice", shots=1024, seed=0)
        assert first.counts == second.counts
        assert (json.dumps(first.to_dict(timings=False), sort_keys=True)
                == json.dumps(second.to_dict(timings=False), sort_keys=True))

    def test_serial_and_parallel_sweeps_byte_identical(self):
        circuits = [ghz(3), universal_mix(4, 2)]
        engines = ("bitslice", "statevector")
        serial = run_sweep(circuits, engines=engines, shots=256, seed=7, jobs=1)
        parallel = run_sweep(circuits, engines=engines, shots=256, seed=7, jobs=2)
        serial_payload = [json.dumps(r.to_dict(timings=False), sort_keys=True)
                          for r in serial]
        parallel_payload = [json.dumps(r.to_dict(timings=False), sort_keys=True)
                            for r in parallel]
        assert serial_payload == parallel_payload

    def test_different_tasks_get_different_seeds(self):
        results = run_sweep([ghz(4, name="a"), ghz(4, name="b")],
                            engines=("bitslice",), shots=1024, seed=5)
        assert results[0].seed != results[1].seed

    def test_unseeded_runs_still_sum_to_shots(self):
        result = run(ghz(3), engine="bitslice", shots=100)
        assert sum(result.counts.values()) == 100


class TestStatisticalAgreement:
    @pytest.mark.parametrize("engine", ["bitslice", "statevector", "qmdd"])
    def test_chi_squared_against_exact_distribution(self, engine):
        circuit = universal_mix(5, 31)
        shots = 20_000
        result = run(circuit, engine=engine, shots=shots, seed=13)
        reference = StatevectorSimulator.simulate(circuit)
        distribution = reference.measurement_distribution()
        # counts keys are creg values; with the default clbit map (clbit j =
        # qubit j) a basis index maps to its bit-reversed creg value.
        n = circuit.num_qubits

        def creg_key(basis_index):
            return int(format(basis_index, f"0{n}b")[::-1], 2)

        expected = {creg_key(index): probability * shots
                    for index, probability in distribution.items()}
        statistic = 0.0
        for key, expectation in expected.items():
            if expectation < 5.0:
                continue
            observed = result.counts.get(key, 0)
            statistic += (observed - expectation) ** 2 / expectation
        bins = sum(1 for e in expected.values() if e >= 5.0)
        assert bins > 3
        # Generous acceptance: mean df plus five standard deviations.
        assert statistic < bins + 5.0 * math.sqrt(2.0 * bins)

    def test_sampled_marginal_matches_probability_query(self):
        circuit = QuantumCircuit(3, name="biased").h(0).t(0).h(0).cx(0, 1)
        circuit.measure_all()
        shots = 50_000
        result = run(circuit, engine="bitslice", shots=shots, seed=3)
        engine = create_engine("bitslice")
        engine.run(circuit)
        probability_zero = engine.probability([0], [0])
        observed = sum(count for key, count in result.counts.items()
                       if not key & 1)  # clbit 0 carries qubit 0
        assert observed / shots == pytest.approx(probability_zero, abs=0.01)


class TestCountsPlumbing:
    def test_counts_keyed_by_classical_register(self):
        # measure q[0] -> c[1], q[1] -> c[0]: a |10> outcome must appear as
        # creg value 0b10 (qubit 0's bit on clbit 1).
        circuit = QuantumCircuit(2, name="remap").x(0)
        circuit.measure(0, 1).measure(1, 0)
        result = run(circuit, engine="bitslice", shots=16, seed=0)
        assert result.counts == {0b10: 16}

    def test_counts_without_measurements_use_basis_indices(self):
        circuit = QuantumCircuit(2, name="nomeasure").x(1)
        result = run(circuit, engine="bitslice", shots=8, seed=0)
        # Qubit 0 is the most significant bit of a basis index: |01> = 1.
        assert result.counts == {1: 8}

    def test_zero_shots_yield_empty_counts(self):
        result = run(ghz(2), engine="bitslice", shots=0, seed=0)
        assert result.counts == {}
        assert result.shots == 0

    def test_counts_absent_without_shots(self):
        result = run(ghz(2), engine="bitslice")
        assert result.counts is None
        assert "counts" not in result.to_dict()

    def test_counts_bitstrings_rendering(self):
        result = run(ghz(3), engine="bitslice", shots=64, seed=1)
        strings = result.counts_bitstrings(width=3)
        assert set(strings) <= {"000", "111"}
        assert sum(strings.values()) == 64

    def test_counts_bitstrings_default_width_keeps_zero_high_bits(self):
        # Qubit 2 never fires, but its clbit must still appear in the
        # rendered bitstrings (the register width travels on the result).
        circuit = QuantumCircuit(3, name="lowbits").h(0).cx(0, 1).measure_all()
        result = run(circuit, engine="bitslice", shots=50, seed=2)
        assert result.counts_width == 3
        assert all(len(key) == 3 for key in result.counts_bitstrings())
        assert result.to_dict(timings=False)["counts_width"] == 3

    def test_wide_registers_sample_beyond_the_query_cap(self):
        # The final-probability query caps at 64 qubits; sampling must not:
        # qubit 69's deterministic |1> has to show up in the counts.
        circuit = QuantumCircuit(70, name="wide70").x(69)
        circuit.measure_all()
        result = run(circuit, engine="bitslice", shots=4, seed=0)
        assert result.counts_width == 70
        assert result.counts == {1 << 69: 4}

    def test_unsupported_sampling_flag_classified(self):
        from repro.engines import register_engine, unregister_engine
        from repro.engines.adapters import BitSliceEngine
        from repro.engines.base import Capabilities

        @register_engine("nosample-test")
        class NoSampleEngine(BitSliceEngine):
            capabilities = Capabilities(
                name="nosample-test", label="nosample",
                supported_gates=BitSliceEngine.capabilities.supported_gates,
                exact=True, selection_priority=99, supports_sampling=False)

            def sample(self, shots, qubits=None, rng=None):
                return super(BitSliceEngine, self).sample(shots, qubits, rng)

        try:
            result = run(ghz(2), engine="nosample-test", shots=16, seed=0)
            assert result.status == "unsupported"
            assert result.counts is None
        finally:
            unregister_engine("nosample-test")

    def test_transforms_preserve_classical_register_width(self):
        from repro.circuit.qasm import circuit_from_qasm
        from repro.circuit.transforms import (cancel_adjacent_inverses,
                                              expand_swaps)

        text = "qreg q[2];\ncreg c[4];\nswap q[0], q[1];\nmeasure q[0] -> c[0];\n"
        circuit = circuit_from_qasm(text)
        assert circuit.num_clbits == 4
        assert expand_swaps(circuit).num_clbits == 4
        assert cancel_adjacent_inverses(circuit).num_clbits == 4

    def test_same_qubit_measured_into_two_clbits(self):
        # measure q[0] -> c[0]; measure q[0] -> c[1]; both clbits read 1.
        circuit = QuantumCircuit(1, name="fanout").x(0)
        circuit.measure(0, 0).measure(0, 1)
        assert circuit.final_measurement_map() == [(0, 0), (0, 1)]
        result = run(circuit, engine="bitslice", shots=12, seed=0)
        assert result.counts == {0b11: 12}
        from repro.circuit.qasm import circuit_from_qasm, circuit_to_qasm

        assert circuit_from_qasm(circuit_to_qasm(circuit)) \
            .final_measurement_map() == [(0, 0), (0, 1)]

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError):
            run(ghz(2), engine="bitslice", shots=-1)


class TestEngineSampleProtocol:
    def test_engine_sample_defaults_to_all_qubits(self):
        engine = create_engine("statevector")
        engine.run(QuantumCircuit(3).x(2))
        counts = engine.sample(10, rng=np.random.default_rng(0))
        assert counts == {0b001: 10}

    def test_custom_qubit_subset_and_order(self):
        engine = create_engine("bitslice")
        engine.run(QuantumCircuit(3).x(0))
        # Sampling (2, 0): qubit 2 is the most significant sampled bit.
        counts = engine.sample(10, qubits=[2, 0], rng=np.random.default_rng(0))
        assert counts == {0b01: 10}

    def test_bitslice_sampler_counters_surface_in_statistics(self):
        result = run(ghz(4), engine="bitslice", shots=128, seed=0)
        assert result.extra.get("sampler_restrict_batches", 0) > 0
        assert result.extra.get("sampler_mass_evaluations", 0) > 0

"""Engine contract tests: one parametrized suite run against every
registered engine.

Three properties every engine must hold:

* **lifecycle** — ``prepare`` / ``apply`` / ``probability`` / ``statistics``
  work in order and agree with the dense oracle on a small circuit;
* **capability honesty** — gates the engine declares unsupported actually
  raise :class:`UnsupportedGateError`, and declared-supported gate kinds
  apply without one;
* **stats-schema conformance** — ``statistics()`` reports the canonical
  keys and never leaks a legacy per-engine spelling.
"""

from __future__ import annotations

import pytest

from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.engines import (
    CANONICAL_STATS_KEYS,
    LimitEnforcer,
    ResourceLimits,
    available_engines,
    create_engine,
    engine_capabilities,
)
from repro.engines.base import LEGACY_STATS_KEYS
from repro.exceptions import UnsupportedGateError
from repro.workloads.algorithms import ghz_circuit

ENGINES = available_engines()

LIMITS = ResourceLimits(max_seconds=60.0, max_nodes=200_000)


def _gate_for_kind(kind: GateKind) -> Gate:
    """A minimal concrete gate instance of ``kind`` on a 4-qubit register."""
    if kind in (GateKind.SWAP,):
        return Gate(kind, (0, 1))
    if kind is GateKind.CSWAP:
        return Gate(kind, (1, 2), (0,))
    if kind in (GateKind.CX, GateKind.CZ, GateKind.CCX):
        return Gate(kind, (1,), (0,))
    return Gate(kind, (0,))


@pytest.mark.parametrize("engine", ENGINES)
class TestLifecycle:
    def test_prepare_apply_probability_statistics(self, engine):
        circuit = ghz_circuit(4)
        instance = create_engine(engine)
        instance.prepare(circuit, LIMITS)
        for gate in circuit.gates:
            instance.apply(gate)
        assert instance.num_qubits == 4
        probability = instance.probability([0, 1, 2, 3], [0, 0, 0, 0])
        assert probability == pytest.approx(0.5, abs=1e-9)
        assert instance.probability([0], [1]) == pytest.approx(0.5, abs=1e-9)
        assert instance.memory_nodes() > 0

    def test_limit_enforcer_execution(self, engine):
        circuit = ghz_circuit(4)
        instance = LimitEnforcer(create_engine(engine), LIMITS).execute(circuit)
        assert instance.probability([0, 1], [1, 1]) == pytest.approx(0.5, abs=1e-9)

    def test_joint_probability_matches_dense_oracle(self, engine):
        circuit = (QuantumCircuit(3, name="cliff3")
                   .h(0).s(0).cx(0, 1).h(2).cz(1, 2).sdg(2).h(1))
        oracle = StatevectorSimulator.simulate(circuit)
        instance = create_engine(engine)
        instance.run(circuit, LIMITS)
        for outcome in ([0, 0, 0], [1, 0, 1], [1, 1, 1]):
            expected = oracle.probability_of_outcome([0, 1, 2], outcome)
            assert instance.probability([0, 1, 2], outcome) == pytest.approx(
                expected, abs=1e-9)


@pytest.mark.parametrize("engine", ENGINES)
class TestCapabilityHonesty:
    def test_declared_supported_kinds_apply(self, engine):
        capabilities = engine_capabilities(engine)
        circuit = QuantumCircuit(4)
        instance = create_engine(engine)
        instance.prepare(circuit, LIMITS)
        for kind in sorted(capabilities.supported_gates, key=lambda k: k.value):
            gate = _gate_for_kind(kind)
            if not capabilities.supports_gate(gate):
                continue  # e.g. clifford_only engines with degenerate forms
            instance.apply(gate)

    def test_declared_unsupported_kinds_raise(self, engine):
        capabilities = engine_capabilities(engine)
        unsupported = [kind for kind in GateKind
                       if kind is not GateKind.MEASURE
                       and kind not in capabilities.supported_gates]
        for kind in unsupported:
            instance = create_engine(engine)
            instance.prepare(QuantumCircuit(4), LIMITS)
            with pytest.raises(UnsupportedGateError):
                instance.apply(_gate_for_kind(kind))

    def test_unsupported_gate_instances_raise(self, engine):
        """Clifford-only engines must reject non-Clifford *instances* of
        supported kinds (e.g. a two-control Toffoli)."""
        capabilities = engine_capabilities(engine)
        toffoli = Gate(GateKind.CCX, (2,), (0, 1))
        if capabilities.supports_gate(toffoli):
            return
        instance = create_engine(engine)
        instance.prepare(QuantumCircuit(4), LIMITS)
        with pytest.raises(UnsupportedGateError):
            instance.apply(toffoli)


@pytest.mark.parametrize("engine", ENGINES)
class TestStatsSchema:
    def test_canonical_keys_present(self, engine):
        circuit = ghz_circuit(5)
        instance = create_engine(engine)
        instance.run(circuit, LIMITS)
        stats = instance.statistics()
        for key in CANONICAL_STATS_KEYS:
            assert key in stats, f"{engine} missing canonical stat {key!r}"
        assert stats["num_qubits"] == 5
        assert stats["gates_applied"] == 5
        assert stats["peak_memory_nodes"] > 0
        assert stats["elapsed_seconds"] >= 0.0

    def test_no_legacy_keys_leak(self, engine):
        instance = create_engine(engine)
        instance.run(ghz_circuit(3), LIMITS)
        stats = instance.statistics()
        for key in LEGACY_STATS_KEYS:
            assert key not in stats, (
                f"{engine} leaks legacy stat spelling {key!r}; adapters must "
                f"normalise to the canonical schema")

    def test_capability_descriptor_consistency(self, engine):
        capabilities = engine_capabilities(engine)
        assert capabilities.name == engine
        assert capabilities.label
        assert capabilities.supported_gates

"""Mid-circuit measurement, reset and classical-feedback semantics.

The collapse semantics of every engine are pinned against the dense
statevector engine: forced trajectories (same seed, shared measurement
protocol) must collapse every engine onto the same classical outcomes and
the same post-measurement distributions.
"""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.engines import create_engine, run
from repro.exceptions import UnsupportedGateError

COLLAPSING_ENGINES = ("bitslice", "qmdd", "statevector", "stabilizer")


def feedback_circuit():
    """H; measure -> c0; X on q1 if c==1; measure q1.  Outcomes correlate."""
    circuit = QuantumCircuit(2, name="feedback")
    circuit.h(0).measure_mid(0, 0)
    circuit.add(GateKind.X, [1], condition=1)
    circuit.measure(1, 1)
    return circuit


class TestCollapsePinnedAgainstStatevector:
    @pytest.mark.parametrize("engine", COLLAPSING_ENGINES)
    def test_same_seed_same_trajectory(self, engine):
        """Every engine must draw the same mid-circuit outcome and end in
        the same collapsed state as the dense reference."""
        circuit = feedback_circuit()
        reference = create_engine("statevector")
        reference.run(circuit, rng=np.random.default_rng(123))
        instance = create_engine(engine)
        instance.run(circuit, rng=np.random.default_rng(123))
        assert instance.classical_bits == reference.classical_bits
        for outcome in (0, 1):
            assert instance.probability([1], [outcome]) == pytest.approx(
                reference.probability([1], [outcome]), abs=1e-9)

    @pytest.mark.parametrize("engine", COLLAPSING_ENGINES)
    def test_forced_collapse_matches_statevector_distribution(self, engine):
        """Collapse q0 of a GHZ state to 1: both remaining qubits must be 1."""
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        instance = create_engine(engine)
        instance.run(circuit)
        instance.collapse(0, 1)
        assert instance.probability([1, 2], [1, 1]) == pytest.approx(1.0)
        assert instance.probability([1, 2], [0, 0]) == pytest.approx(0.0)

    @pytest.mark.parametrize("engine", COLLAPSING_ENGINES)
    def test_reset_forces_zero(self, engine):
        circuit = QuantumCircuit(2, name="reset")
        circuit.x(0).reset(0).cx(0, 1)
        instance = create_engine(engine)
        instance.run(circuit, rng=np.random.default_rng(0))
        assert instance.probability([0, 1], [0, 0]) == pytest.approx(1.0)

    @pytest.mark.parametrize("engine", COLLAPSING_ENGINES)
    def test_reset_of_superposition(self, engine):
        circuit = QuantumCircuit(1, name="reset_h").h(0).reset(0)
        instance = create_engine(engine)
        instance.run(circuit, rng=np.random.default_rng(5))
        assert instance.probability([0], [0]) == pytest.approx(1.0)


class TestClassicalFeedback:
    def test_condition_only_fires_on_matching_register(self):
        circuit = QuantumCircuit(2, name="nofire")
        circuit.x(0).measure_mid(0, 0)           # c == 1 deterministically
        circuit.add(GateKind.X, [1], condition=0)  # must not fire
        instance = create_engine("bitslice")
        instance.run(circuit)
        assert instance.classical_bits == [1]
        assert instance.probability([1], [0]) == pytest.approx(1.0)

    def test_multi_bit_condition_value(self):
        circuit = QuantumCircuit(3, name="threebit")
        circuit.x(0).x(1)
        circuit.measure_mid(0, 0).measure_mid(1, 1)   # c == 0b11 == 3
        circuit.add(GateKind.X, [2], condition=3)
        instance = create_engine("statevector")
        instance.run(circuit)
        assert instance.classical_bits == [1, 1]
        assert instance.probability([2], [1]) == pytest.approx(1.0)

    def test_trajectory_counts_respect_feedback(self):
        result = run(feedback_circuit(), engine="bitslice", shots=300, seed=8)
        # Feedback forces q1 == c0, so only creg values 0b00 and 0b11 occur.
        assert set(result.counts) <= {0b00, 0b11}
        assert sum(result.counts.values()) == 300
        assert min(result.counts.values()) > 50  # both branches populated
        # Trajectory runs report their distribution through counts only:
        # the engine ends in the last shot's collapsed state, on which the
        # all-zeros query would be a random artifact.
        assert result.final_probability is None

    def test_trajectory_counts_identical_across_engines(self):
        results = [run(feedback_circuit(), engine=engine, shots=120, seed=21).counts
                   for engine in COLLAPSING_ENGINES]
        assert all(counts == results[0] for counts in results)

    def test_dynamic_circuit_without_shots_runs_one_trajectory(self):
        result = run(feedback_circuit(), engine="bitslice", seed=2)
        assert result.status == "ok"
        assert result.counts is None


class TestExactCollapseRenormalisation:
    def test_power_of_two_collapse_stays_exact(self):
        from repro import BitSliceSimulator

        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        simulator = BitSliceSimulator.simulate(circuit)
        simulator.measure_qubit(0, forced_outcome=1)
        # p = 1/2: the omega-algebra absorbs 1/sqrt(p) into k exactly.
        assert simulator.state.s == 1.0
        assert simulator.state.k == 0
        assert simulator.amplitude(0b111).to_complex() == 1.0
        assert simulator.total_probability() == pytest.approx(1.0)

    def test_irrational_probability_falls_back_to_float_factor(self):
        from repro import BitSliceSimulator

        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        simulator = BitSliceSimulator.simulate(circuit)
        simulator.measure_qubit(0, forced_outcome=0)
        assert simulator.state.s != 1.0
        assert simulator.total_probability() == pytest.approx(1.0)

    def test_sequential_exact_collapses(self):
        from repro import BitSliceSimulator

        circuit = QuantumCircuit(4)
        for qubit in range(4):
            circuit.h(qubit)
        simulator = BitSliceSimulator.simulate(circuit)
        for qubit in range(4):
            simulator.measure_qubit(qubit, forced_outcome=1)
        assert simulator.state.s == 1.0
        assert simulator.state.k == 0
        assert simulator.amplitude(0b1111).to_complex() == 1.0


class TestEngineWithoutCollapse:
    def test_default_collapse_refuses(self):
        # The base-class default must refuse rather than silently no-op.
        with pytest.raises(UnsupportedGateError):
            _minimal_engine().collapse(0, 0)

    def test_reset_gate_capability_follows_measurement_flag(self):
        from repro.engines import engine_capabilities

        reset = Gate(GateKind.RESET, (0,))
        assert engine_capabilities("bitslice").supports_gate(reset)
        no_measure = engine_capabilities("bitslice").__class__(
            name="x", label="x", supported_gates=frozenset(),
            exact=False, supports_measurement=False)
        assert not no_measure.supports_gate(reset)


def _minimal_engine():
    """An Engine subclass that implements only the static protocol."""
    from repro.engines.base import Capabilities, Engine
    from repro.engines.base import ALL_GATE_KINDS

    class MinimalEngine(Engine):
        capabilities = Capabilities(
            name="minimal-test", label="minimal",
            supported_gates=ALL_GATE_KINDS, exact=False,
            supports_measurement=False)

        def apply(self, gate):  # pragma: no cover - unused
            pass

        def probability(self, qubits, bits):  # pragma: no cover - unused
            return 1.0

        def memory_nodes(self):  # pragma: no cover - unused
            return 1

        @property
        def num_qubits(self):  # pragma: no cover - unused
            return 1

    return MinimalEngine()

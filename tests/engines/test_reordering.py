"""The front door's ``reorder=`` flag and cross-engine reorder equality.

Dynamic reordering is a representation-level optimisation of the bit-sliced
engine: it may change node counts and timings, never results.  These tests
pin that from the outside — ``repro.run(..., reorder=...)`` must report the
same final probability and the same fixed-seed counts as the plain run and
as every other engine, and engines without reordering support must accept
(and ignore) the flag so mixed-engine sweeps stay uniform.
"""

from __future__ import annotations

import pytest

import repro
from repro.circuit.circuit import QuantumCircuit
from repro.engines.base import DEFAULT_AUTO_REORDER_THRESHOLD
from repro.engines.registry import create_engine
from repro.workloads.revlib import h_augment, ripple_carry_adder

from tests.conftest import build_circuit_from_ops, random_ops


def _adder_circuit(num_bits=4):
    circuit, constants = ripple_carry_adder(num_bits)
    return h_augment(circuit, constants)


class TestCapabilities:
    def test_bitslice_declares_reordering(self):
        assert create_engine("bitslice").capabilities.supports_reordering

    def test_other_engines_do_not(self):
        for name in ("qmdd", "statevector", "stabilizer"):
            engine = create_engine(name)
            assert not engine.capabilities.supports_reordering
            # The base hook ignores the request instead of failing.
            assert engine.configure_reordering(1000) is False

    def test_bitslice_configure_returns_true(self):
        engine = create_engine("bitslice")
        assert engine.configure_reordering(1000) is True


class TestFrontDoorFlag:
    def test_reorder_threshold_engages_and_reports_counters(self):
        circuit = _adder_circuit()
        result = repro.run(circuit, engine="bitslice", reorder=30)
        assert result.status == "ok"
        assert result.extra["substrate_reorder_count"] >= 1
        assert result.extra["substrate_reorder_swaps"] > 0
        assert "substrate_reorder_nodes_before" in result.extra
        assert "substrate_reorder_nodes_after" in result.extra

    def test_reorder_true_uses_default_threshold(self):
        # A tiny circuit never reaches the default threshold: the flag is
        # accepted, counters stay zero, results are produced normally.
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        result = repro.run(circuit, engine="bitslice", reorder=True)
        assert result.status == "ok"
        assert result.extra["substrate_reorder_count"] == 0
        assert DEFAULT_AUTO_REORDER_THRESHOLD > 0

    def test_reorder_does_not_change_final_probability(self):
        circuit = _adder_circuit()
        plain = repro.run(circuit, engine="bitslice")
        reordered = repro.run(circuit, engine="bitslice", reorder=30)
        assert reordered.final_probability == pytest.approx(
            plain.final_probability, abs=1e-15)

    def test_unsupporting_engine_ignores_the_flag(self):
        circuit = _adder_circuit()
        result = repro.run(circuit, engine="statevector", reorder=30)
        assert result.status == "ok"
        assert result.final_probability is not None

    def test_reorder_off_leaves_counters_zero(self):
        circuit = _adder_circuit()
        result = repro.run(circuit, engine="bitslice")
        assert result.extra["substrate_reorder_count"] == 0


class TestCrossEngineEquality:
    @pytest.mark.parametrize("seed", range(3))
    def test_final_probability_equal_across_engines_with_reordering(self, seed):
        circuit = build_circuit_from_ops(4, random_ops(4, 20, seed + 400))
        results = {engine: repro.run(circuit, engine=engine, reorder=25)
                   for engine in ("bitslice", "qmdd", "statevector")}
        assert all(result.status == "ok" for result in results.values())
        reference = results["statevector"].final_probability
        for engine, result in results.items():
            assert result.final_probability == pytest.approx(
                reference, abs=1e-9), engine

    @pytest.mark.parametrize("seed", range(3))
    def test_fixed_seed_counts_equal_across_engines_with_reordering(self, seed):
        circuit = build_circuit_from_ops(4, random_ops(4, 16, seed + 500))
        with_reorder = repro.run(circuit, engine="bitslice", shots=120,
                                 seed=seed, reorder=25)
        without = repro.run(circuit, engine="bitslice", shots=120, seed=seed)
        dense = repro.run(circuit, engine="statevector", shots=120, seed=seed,
                          reorder=25)
        assert with_reorder.counts == without.counts == dense.counts

    def test_sweep_passes_reorder_uniformly(self):
        circuit = _adder_circuit()
        results = repro.run_sweep([circuit],
                                  engines=("bitslice", "qmdd", "statevector"),
                                  shots=50, seed=9, reorder=30)
        assert [result.status for result in results] == ["ok"] * 3
        # Each sweep task samples with its own position-derived seed; the
        # bitslice task must match a direct run at that seed, reorder on or
        # off (reordering never changes sampled counts).
        from repro.engines.frontdoor import derive_task_seed

        direct = repro.run(circuit, engine="bitslice", shots=50,
                           seed=derive_task_seed(9, 0))
        assert results[0].counts == direct.counts
        assert results[0].extra["substrate_reorder_count"] >= 1

    def test_serial_and_parallel_sweeps_agree_with_reordering(self):
        circuits = [build_circuit_from_ops(3, random_ops(3, 10, seed))
                    for seed in (1, 2)]
        serial = repro.run_sweep(circuits, engines=("bitslice",),
                                 shots=40, seed=4, reorder=20, jobs=1)
        parallel = repro.run_sweep(circuits, engines=("bitslice",),
                                   shots=40, seed=4, reorder=20, jobs=2)
        assert ([result.to_dict(timings=False) for result in serial]
                == [result.to_dict(timings=False) for result in parallel])

"""Test package."""

"""Tests for the JSON / Markdown experiment reports."""

from __future__ import annotations

import json

import pytest

from repro.harness.experiments import table3_experiment, table5_experiment
from repro.harness.report import (
    experiment_to_dict,
    experiment_to_json,
    experiment_to_markdown,
    save_experiment,
)
from repro.harness.runner import ResourceLimits

TINY_LIMITS = ResourceLimits(max_seconds=30.0, max_nodes=200_000)


@pytest.fixture(scope="module")
def small_experiment():
    return table3_experiment(qubit_counts=(4,), circuits_per_size=1, limits=TINY_LIMITS)


class TestJsonReport:
    def test_dict_structure(self, small_experiment):
        payload = experiment_to_dict(small_experiment)
        assert payload["name"] == "table3_random_circuits"
        assert payload["metadata"]["qubit_counts"] == [4]
        assert len(payload["groups"]) == 1
        engines = payload["groups"][0]["engines"]
        assert set(engines) == {"qmdd", "bitslice"}
        run = engines["bitslice"]["runs"][0]
        assert run["status"] in ("ok", "TO", "MO", "error")
        assert run["num_qubits"] == 4

    def test_json_round_trip(self, small_experiment):
        payload = json.loads(experiment_to_json(small_experiment))
        assert payload["name"] == "table3_random_circuits"

    def test_save_experiment(self, small_experiment, tmp_path):
        path = tmp_path / "table3.json"
        save_experiment(small_experiment, str(path))
        assert json.loads(path.read_text())["groups"]


class TestMarkdownReport:
    def test_markdown_layout(self, small_experiment):
        text = experiment_to_markdown(small_experiment)
        lines = text.strip().splitlines()
        assert lines[0].startswith("| group |")
        assert set(lines[1].replace("|", "").strip()) <= {"-", " "}
        assert len(lines) == 3
        assert "ok" in lines[2]

    def test_markdown_handles_missing_engines(self):
        experiment = table5_experiment(qubit_counts=(4,), limits=TINY_LIMITS)
        text = experiment_to_markdown(experiment, engines=("qmdd", "bitslice", "stabilizer"))
        assert "stabilizer" in text.splitlines()[0].lower() or "CHP" in text.splitlines()[0]

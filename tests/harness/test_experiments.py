"""Tests for the per-table experiment definitions (run at tiny scale)."""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    TABLE3_PAPER_QUBITS,
    TABLE5_PAPER_QUBITS,
    TABLE6_PAPER_QUBITS,
    accuracy_circuit,
    accuracy_experiment,
    table3_experiment,
    table4_experiment,
    table5_experiment,
    table6_experiment,
)
from repro.harness.runner import ResourceLimits

TINY_LIMITS = ResourceLimits(max_seconds=30.0, max_nodes=200_000)


class TestPaperParameters:
    def test_paper_scale_qubit_counts_match_tables(self):
        assert TABLE3_PAPER_QUBITS == (40, 80, 120, 160, 200, 300, 400, 500)
        assert TABLE5_PAPER_QUBITS == (80, 90, 100, 500, 1000, 5000, 10000)
        assert TABLE6_PAPER_QUBITS == (16, 20, 25, 30, 36, 42, 49, 56, 64, 72, 81, 90)


class TestTable3:
    def test_structure_and_gate_ratio(self):
        experiment = table3_experiment(qubit_counts=(4, 6), circuits_per_size=2,
                                       limits=TINY_LIMITS)
        assert set(experiment.runs) == {4, 6}
        for group, per_engine in experiment.runs.items():
            assert set(per_engine) == {"qmdd", "bitslice"}
            for results in per_engine.values():
                assert len(results) == 2
                for result in results:
                    assert result.num_gates == group + 3 * group
        summary = experiment.summaries[4]["bitslice"]
        assert summary["runs"] == 2


class TestTable4:
    def test_original_and_modified_variants(self):
        experiment = table4_experiment(families=("add8", "nested_if6"),
                                       limits=TINY_LIMITS)
        groups = set(experiment.runs)
        assert ("add8", "original") in groups
        assert ("add8", "modified") in groups
        original = experiment.runs[("add8", "original")]["bitslice"][0]
        modified = experiment.runs[("add8", "modified")]["bitslice"][0]
        assert modified.num_gates > original.num_gates
        assert "constants" in experiment.metadata


class TestTable5:
    def test_families_and_engines(self):
        experiment = table5_experiment(qubit_counts=(6, 8), limits=TINY_LIMITS)
        assert ("entanglement", 6) in experiment.runs
        assert ("bv", 8) in experiment.runs
        engines = set(experiment.runs[("entanglement", 6)])
        assert {"qmdd", "bitslice", "stabilizer"} <= engines
        # Gate count conventions from the paper: GHZ has #gates == #qubits.
        ghz_result = experiment.runs[("entanglement", 6)]["bitslice"][0]
        assert ghz_result.num_gates == 6

    def test_stabilizer_can_be_excluded(self):
        experiment = table5_experiment(qubit_counts=(4,), include_stabilizer=False,
                                       limits=TINY_LIMITS)
        assert "stabilizer" not in experiment.runs[("entanglement", 4)]


class TestTable6:
    def test_structure(self):
        experiment = table6_experiment(qubit_counts=(16,), circuits_per_size=1,
                                       depth=3, limits=TINY_LIMITS)
        assert set(experiment.runs) == {16}
        for engine, results in experiment.runs[16].items():
            assert len(results) == 1
            assert results[0].num_qubits == 16

    def test_unknown_lattice_rejected(self):
        with pytest.raises(KeyError):
            table6_experiment(qubit_counts=(17,), limits=TINY_LIMITS)


class TestAccuracy:
    def test_accuracy_circuit_structure(self):
        circuit = accuracy_circuit(4, layers=3)
        assert circuit.num_qubits == 4
        assert circuit.num_gates == 3 * (4 + 4 + 1)

    def test_accuracy_experiment_shows_exactness_gap(self):
        experiment = accuracy_experiment(num_qubits=4, layers=(4, 16),
                                         tolerances=(1e-5, 1e-12))
        rows = experiment.metadata["drift_rows"]
        assert len(rows) == 2
        for row in rows:
            assert row["exact_norm_drift"] < 1e-12
            assert row["qmdd_drift_tol_1e-05"] >= row["exact_norm_drift"]
        # The coarse tolerance must drift more than the fine one somewhere.
        assert any(row["qmdd_drift_tol_1e-05"] > row["qmdd_drift_tol_1e-12"]
                   for row in rows)

"""Tests for the experiment runner (outcome classification and summaries)."""

from __future__ import annotations

import math

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.harness.runner import (
    ENGINES,
    ResourceLimits,
    RunResult,
    run_circuit,
    run_suite,
    summarise,
)
from repro.workloads.algorithms import ghz_circuit
from repro.workloads.random_circuits import generate_random_circuit


class TestRunCircuit:
    def test_all_engines_registered(self):
        assert set(ENGINES) == {"bitslice", "qmdd", "statevector", "stabilizer"}

    @pytest.mark.parametrize("engine", ["bitslice", "qmdd", "statevector", "stabilizer"])
    def test_successful_run(self, engine):
        circuit = ghz_circuit(6)
        result = run_circuit(engine, circuit, ResourceLimits(max_seconds=60, max_nodes=100_000))
        assert result.succeeded
        assert result.status == "ok"
        assert result.engine == engine
        assert result.num_qubits == 6
        assert result.num_gates == 6
        assert result.runtime_seconds >= 0.0
        assert result.memory_nodes > 0
        assert result.extra["final_probability"] == pytest.approx(0.5, abs=1e-6)

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError):
            run_circuit("nonexistent", ghz_circuit(2))

    def test_timeout_classification(self):
        circuit = generate_random_circuit(10, seed=1)
        result = run_circuit("bitslice", circuit, ResourceLimits(max_seconds=0.0))
        assert result.status == "TO"
        assert not result.succeeded
        assert "time" in result.detail.lower() or "budget" in result.detail.lower()

    def test_memory_classification(self):
        circuit = generate_random_circuit(10, seed=1)
        result = run_circuit("qmdd", circuit,
                             ResourceLimits(max_seconds=60, max_nodes=4))
        assert result.status == "MO"

    def test_dense_engine_memory_guard(self):
        circuit = generate_random_circuit(30, seed=1)
        result = run_circuit("statevector", circuit,
                             ResourceLimits(max_dense_qubits=20))
        assert result.status == "MO"

    def test_unsupported_classification(self):
        circuit = QuantumCircuit(2).h(0).t(0)
        result = run_circuit("stabilizer", circuit)
        assert result.status == "unsupported"

    def test_error_classification(self):
        # Force a numerical error by running a deep circuit with an absurdly
        # coarse QMDD tolerance through a purpose-built engine entry.
        from repro.baselines.qmdd import QmddSimulator
        from repro.harness import runner as runner_module

        def run_sloppy_qmdd(circuit, limits):
            simulator = QmddSimulator(circuit.num_qubits, tolerance=5e-2,
                                      error_threshold=1e-6,
                                      max_seconds=limits.max_seconds)
            simulator.run(circuit)
            return {"memory_nodes": simulator.num_nodes()}

        runner_module.ENGINES["sloppy"] = run_sloppy_qmdd
        try:
            circuit = generate_random_circuit(6, seed=3)
            result = run_circuit("sloppy", circuit, ResourceLimits(max_seconds=60))
            assert result.status in ("error", "ok")
        finally:
            del runner_module.ENGINES["sloppy"]

    def test_memory_mb_conversion(self):
        result = RunResult("bitslice", "c", 2, 2, "ok", memory_nodes=1024 * 1024)
        assert result.memory_mb == pytest.approx(48.0)


class TestSuiteAndSummary:
    def test_run_suite(self):
        circuits = [ghz_circuit(4), ghz_circuit(5)]
        results = run_suite("bitslice", circuits, ResourceLimits(max_seconds=30))
        assert len(results) == 2
        assert all(result.succeeded for result in results)

    def test_summarise_counts_outcomes(self):
        results = [
            RunResult("e", "a", 2, 2, "ok", runtime_seconds=1.0, memory_nodes=10),
            RunResult("e", "b", 2, 2, "ok", runtime_seconds=3.0, memory_nodes=30),
            RunResult("e", "c", 2, 2, "TO"),
            RunResult("e", "d", 2, 2, "MO"),
            RunResult("e", "f", 2, 2, "error"),
        ]
        summary = summarise(results)
        assert summary["runs"] == 5
        assert summary["successes"] == 2
        assert summary["avg_runtime"] == pytest.approx(2.0)
        assert summary["timeouts"] == 1
        assert summary["memouts"] == 1
        assert summary["errors"] == 1
        assert summary["unsupported"] == 0

    def test_summarise_all_failed(self):
        summary = summarise([RunResult("e", "a", 2, 2, "TO")])
        assert summary["successes"] == 0
        assert math.isnan(summary["avg_runtime"])

    def test_summarise_empty(self):
        summary = summarise([])
        assert summary["runs"] == 0
        assert summary["avg_memory_mb"] == 0.0

"""Tests for the harness façade (outcome classification and summaries).

The heavy lifting moved into :mod:`repro.engines`; these tests pin the
harness-facing behaviour: classification of every outcome class, canonical
result fields, and the paper-style summary aggregation.
"""

from __future__ import annotations

import math

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.engines import (
    Capabilities,
    Engine,
    available_engines,
    register_engine,
    unregister_engine,
)
from repro.engines.base import ALL_GATE_KINDS
from repro.exceptions import NumericalError
from repro.harness.runner import (
    ResourceLimits,
    RunResult,
    run_circuit,
    run_suite,
    summarise,
)
from repro.workloads.algorithms import ghz_circuit
from repro.workloads.random_circuits import generate_random_circuit


class TestRunCircuit:
    def test_all_engines_registered(self):
        assert {"bitslice", "qmdd", "statevector", "stabilizer"} <= set(available_engines())

    @pytest.mark.parametrize("engine", ["bitslice", "qmdd", "statevector", "stabilizer"])
    def test_successful_run(self, engine):
        circuit = ghz_circuit(6)
        result = run_circuit(engine, circuit, ResourceLimits(max_seconds=60, max_nodes=100_000))
        assert result.succeeded
        assert result.status == "ok"
        assert result.engine == engine
        assert result.num_qubits == 6
        assert result.num_gates == 6
        assert result.elapsed_seconds >= 0.0
        assert result.peak_memory_nodes > 0
        assert result.final_probability == pytest.approx(0.5, abs=1e-6)

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError):
            run_circuit("nonexistent", ghz_circuit(2))

    def test_timeout_classification(self):
        circuit = generate_random_circuit(10, seed=1)
        result = run_circuit("bitslice", circuit, ResourceLimits(max_seconds=0.0))
        assert result.status == "TO"
        assert not result.succeeded
        assert "time" in result.detail.lower() or "budget" in result.detail.lower()

    def test_memory_classification(self):
        circuit = generate_random_circuit(10, seed=1)
        result = run_circuit("qmdd", circuit,
                             ResourceLimits(max_seconds=60, max_nodes=4))
        assert result.status == "MO"

    def test_dense_engine_memory_guard(self):
        circuit = generate_random_circuit(30, seed=1)
        result = run_circuit("statevector", circuit,
                             ResourceLimits(max_dense_qubits=20))
        assert result.status == "MO"

    def test_unsupported_classification(self):
        circuit = QuantumCircuit(2).h(0).t(0)
        result = run_circuit("stabilizer", circuit)
        assert result.status == "unsupported"

    def test_error_classification(self):
        # Force a numerical error through a purpose-built registered engine.
        @register_engine("sloppy", replace=True)
        class SloppyEngine(Engine):
            capabilities = Capabilities(
                name="sloppy", label="sloppy", supported_gates=ALL_GATE_KINDS,
                exact=False)

            def prepare(self, circuit, limits=None):
                super().prepare(circuit, limits)
                self._n = circuit.num_qubits

            def apply(self, gate):
                raise NumericalError("norm drifted")

            def probability(self, qubits, bits):
                return 0.0

            def memory_nodes(self):
                return 1

            @property
            def num_qubits(self):
                return self._n

        try:
            circuit = generate_random_circuit(6, seed=3)
            result = run_circuit("sloppy", circuit, ResourceLimits(max_seconds=60))
            assert result.status == "error"
        finally:
            unregister_engine("sloppy")

    def test_memory_mb_conversion(self):
        result = RunResult("bitslice", "c", 2, 2, "ok", peak_memory_nodes=1024 * 1024)
        assert result.memory_mb == pytest.approx(48.0)

    def test_compatibility_aliases(self):
        result = RunResult("bitslice", "c", 2, 2, "ok",
                           elapsed_seconds=1.5, peak_memory_nodes=7)
        assert result.runtime_seconds == 1.5
        assert result.memory_nodes == 7


class TestSuiteAndSummary:
    def test_run_suite(self):
        circuits = [ghz_circuit(4), ghz_circuit(5)]
        results = run_suite("bitslice", circuits, ResourceLimits(max_seconds=30))
        assert len(results) == 2
        assert all(result.succeeded for result in results)

    def test_summarise_counts_outcomes(self):
        results = [
            RunResult("e", "a", 2, 2, "ok", elapsed_seconds=1.0, peak_memory_nodes=10),
            RunResult("e", "b", 2, 2, "ok", elapsed_seconds=3.0, peak_memory_nodes=30),
            RunResult("e", "c", 2, 2, "TO"),
            RunResult("e", "d", 2, 2, "MO"),
            RunResult("e", "f", 2, 2, "error"),
        ]
        summary = summarise(results)
        assert summary["runs"] == 5
        assert summary["successes"] == 2
        assert summary["avg_runtime"] == pytest.approx(2.0)
        assert summary["timeouts"] == 1
        assert summary["memouts"] == 1
        assert summary["errors"] == 1
        assert summary["unsupported"] == 0

    def test_summarise_all_failed(self):
        summary = summarise([RunResult("e", "a", 2, 2, "TO")])
        assert summary["successes"] == 0
        assert math.isnan(summary["avg_runtime"])

    def test_summarise_empty(self):
        summary = summarise([])
        assert summary["runs"] == 0
        assert summary["avg_memory_mb"] == 0.0

"""Tests for the table renderers and the CLI entry point."""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    accuracy_experiment,
    table3_experiment,
    table4_experiment,
    table5_experiment,
    table6_experiment,
)
from repro.harness.runner import ResourceLimits
from repro.harness.tables import (
    format_accuracy,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    render_table,
)

TINY_LIMITS = ResourceLimits(max_seconds=30.0, max_nodes=200_000)


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-+-" in lines[2]
        assert "2.50" in text
        assert "-" in lines[4]

    def test_small_numbers_use_scientific_notation(self):
        text = render_table(["v"], [[0.00001]])
        assert "e-05" in text

    def test_nan_renders_as_failed(self):
        text = render_table(["v"], [[float("nan")]])
        assert "failed" in text


class TestTableFormatters:
    def test_format_table3(self):
        experiment = table3_experiment(qubit_counts=(4,), circuits_per_size=1,
                                       limits=TINY_LIMITS)
        text = format_table3(experiment)
        assert "Table III" in text
        assert "#Qubits" in text
        assert "TO/MO" in text
        assert " 4 " in text or text.splitlines()[3].startswith("4")

    def test_format_table4(self):
        experiment = table4_experiment(families=("nested_if6",), limits=TINY_LIMITS)
        text = format_table4(experiment)
        assert "Table IV" in text
        assert "nested_if6" in text
        assert "original" in text and "modified" in text

    def test_format_table5(self):
        experiment = table5_experiment(qubit_counts=(4,), limits=TINY_LIMITS)
        text = format_table5(experiment)
        assert "Table V" in text
        assert "entanglement" in text and "bv" in text

    def test_format_table6(self):
        experiment = table6_experiment(qubit_counts=(16,), circuits_per_size=1,
                                       depth=2, limits=TINY_LIMITS)
        text = format_table6(experiment)
        assert "Table VI" in text
        assert "Mem(MB)" in text

    def test_format_accuracy(self):
        experiment = accuracy_experiment(num_qubits=3, layers=(2,), tolerances=(1e-6,))
        text = format_accuracy(experiment)
        assert "Accuracy" in text
        assert "tol=" in text

    def test_format_accuracy_empty(self):
        from repro.harness.experiments import ExperimentResult

        assert "no accuracy data" in format_accuracy(ExperimentResult("empty"))


class TestCli:
    def test_quick_table3_run(self, capsys, tmp_path):
        from repro.harness.__main__ import main

        out_file = tmp_path / "tables.txt"
        exit_code = main(["table3", "--quick", "--seeds", "1",
                          "--time-limit", "30", "--out", str(out_file)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Table III" in captured.out
        assert out_file.read_text().startswith("Table III")

    def test_quick_accuracy_run(self, capsys):
        from repro.harness.__main__ import main

        assert main(["accuracy", "--quick"]) == 0
        assert "Accuracy" in capsys.readouterr().out

"""End-to-end tests of the BitSliceSimulator facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra import AlgebraicComplex
from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.core.simulator import BitSliceSimulator
from repro.exceptions import SimulationMemoryExceeded, SimulationTimeout

from tests.conftest import assert_states_close, build_circuit_from_ops, random_ops


class TestEndToEnd:
    def test_bell_state(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = BitSliceSimulator.simulate(circuit)
        amplitudes = simulator.to_numpy()
        assert amplitudes[0] == pytest.approx(1 / np.sqrt(2))
        assert amplitudes[3] == pytest.approx(1 / np.sqrt(2))
        assert simulator.amplitude(0) == AlgebraicComplex(0, 0, 0, 1, 1)
        assert simulator.amplitude(1).is_zero()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_match_statevector(self, seed):
        num_qubits = 4
        ops = random_ops(num_qubits, 30, seed * 7 + 1)
        circuit = build_circuit_from_ops(num_qubits, ops)
        ours = BitSliceSimulator.simulate(circuit).to_numpy()
        reference = StatevectorSimulator.simulate(circuit).state
        assert_states_close(ours, reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_total_probability_is_one(self, seed):
        circuit = build_circuit_from_ops(3, random_ops(3, 25, seed + 900))
        simulator = BitSliceSimulator.simulate(circuit)
        assert simulator.total_probability() == pytest.approx(1.0, abs=1e-12)

    def test_circuit_inverse_returns_to_initial_state(self):
        circuit = QuantumCircuit(3).h(0).s(1).cx(0, 1).t(2).ccx([0, 1], 2).z(0)
        round_trip = circuit.compose(circuit.inverse())
        simulator = BitSliceSimulator.simulate(round_trip)
        assert simulator.amplitude(0).to_complex() == pytest.approx(1.0)
        for basis in range(1, 8):
            assert simulator.amplitude(basis).is_zero()

    def test_initial_state_parameter(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        simulator = BitSliceSimulator.simulate(circuit, initial_state=0b10)
        assert simulator.probability_of_outcome([0, 1], [1, 1]) == pytest.approx(1.0)

    def test_mismatched_circuit_size_rejected(self):
        simulator = BitSliceSimulator(2)
        with pytest.raises(ValueError):
            simulator.run(QuantumCircuit(3).h(0))

    def test_measurement_markers_are_ignored_during_run(self):
        circuit = QuantumCircuit(2).h(0).measure(0).measure(1)
        simulator = BitSliceSimulator.simulate(circuit)
        assert simulator.gates_applied == 1


class TestResourceLimits:
    def test_timeout_raises(self):
        circuit = build_circuit_from_ops(6, random_ops(6, 60, 3))
        simulator = BitSliceSimulator(6, max_seconds=0.0)
        with pytest.raises(SimulationTimeout):
            simulator.run(circuit)

    def test_node_limit_raises(self):
        circuit = build_circuit_from_ops(8, random_ops(8, 40, 5))
        simulator = BitSliceSimulator(8, max_nodes=5)
        with pytest.raises(SimulationMemoryExceeded):
            simulator.run(circuit)

    def test_reset_clock(self):
        simulator = BitSliceSimulator(2, max_seconds=1000.0)
        simulator.reset_clock()
        simulator.apply_gate(QuantumCircuit(2).h(0).gates[0])
        assert simulator.gates_applied == 1


class TestStatisticsAndState:
    def test_statistics_fields(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).t(2)
        simulator = BitSliceSimulator.simulate(circuit)
        stats = simulator.statistics()
        assert stats["gates_applied"] == 3
        assert stats["num_qubits"] == 3
        assert stats["bit_width"] >= 2
        assert stats["peak_bdd_nodes"] >= stats["bdd_nodes"] or stats["bdd_nodes"] > 0
        assert stats["elapsed_seconds"] >= 0.0

    def test_normalisation_property(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = BitSliceSimulator.simulate(circuit)
        assert simulator.normalisation == 1.0
        simulator.measure_qubit(0, forced_outcome=0)
        # p = 1/2 renormalises exactly in the omega-algebra (k absorbs the
        # sqrt(2) power), so the float factor stays at exactly 1.
        assert simulator.normalisation == 1.0
        assert simulator.state.k == 0

    def test_auto_shrink_keeps_width_small(self):
        circuit = QuantumCircuit(3)
        for _ in range(4):
            circuit.h(0).h(1).h(2).cx(0, 1).cx(1, 2)
        shrinking = BitSliceSimulator(3, auto_shrink=True)
        shrinking.run(circuit)
        growing = BitSliceSimulator(3, auto_shrink=False)
        growing.run(circuit)
        assert shrinking.state.r <= growing.state.r
        assert_states_close(shrinking.to_numpy(), growing.to_numpy())

    def test_to_algebraic_vector_round_trip(self):
        circuit = QuantumCircuit(2).h(0).t(0).cx(0, 1)
        simulator = BitSliceSimulator.simulate(circuit)
        vector = simulator.to_algebraic_vector()
        assert_states_close(vector.to_numpy(), simulator.to_numpy())

    def test_repr(self):
        simulator = BitSliceSimulator(2)
        assert "BitSliceSimulator" in repr(simulator)

    def test_sample_smoke(self, rng):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = BitSliceSimulator.simulate(circuit)
        counts = simulator.sample(100, rng=rng)
        assert sum(counts.values()) == 100

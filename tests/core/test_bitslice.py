"""Unit tests for the bit-sliced state representation."""

from __future__ import annotations

import pytest

from repro.algebra import AlgebraicComplex
from repro.bdd import BddManager
from repro.core.bitslice import VECTOR_NAMES, BitSlicedState


class TestConstruction:
    def test_initial_basis_state_amplitudes(self):
        state = BitSlicedState(3, initial_state=5)
        for basis in range(8):
            amplitude = state.amplitude(basis)
            if basis == 5:
                assert amplitude == AlgebraicComplex.one()
            else:
                assert amplitude.is_zero()

    def test_only_d_bit0_is_populated(self):
        state = BitSlicedState(2, initial_state=3)
        assert not state.slices["d"][0].is_false()
        assert state.slices["d"][1].is_false()
        for name in ("a", "b", "c"):
            assert all(bit.is_false() for bit in state.slices[name])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BitSlicedState(0)
        with pytest.raises(ValueError):
            BitSlicedState(2, initial_state=4)
        with pytest.raises(ValueError):
            BitSlicedState(2, initial_bits=1)

    def test_shared_manager(self):
        manager = BddManager(4)
        state = BitSlicedState(4, manager=manager)
        assert state.manager is manager
        with pytest.raises(ValueError):
            BitSlicedState(8, manager=BddManager(2))

    def test_initial_statistics(self):
        state = BitSlicedState(3, initial_bits=4)
        stats = state.statistics()
        assert stats["num_qubits"] == 3
        assert stats["bit_width"] == 4
        assert stats["k"] == 0
        assert stats["normalisation"] == 1.0
        assert stats["bdd_nodes"] >= 1


class TestWidthManagement:
    def test_widen_sign_extends(self):
        state = BitSlicedState(2, initial_state=1, initial_bits=2)
        before = state.coefficient_tuple(1)
        state.widen(3)
        assert state.r == 5
        after = state.coefficient_tuple(1)
        assert before[:4] == after[:4]
        for name in VECTOR_NAMES:
            assert len(state.slices[name]) == 5

    def test_shrink_removes_redundant_sign_bits(self):
        state = BitSlicedState(2, initial_bits=2)
        state.widen(4)
        removed = state.shrink()
        assert removed == 4
        assert state.r == 2

    def test_shrink_respects_min_bits(self):
        state = BitSlicedState(2, initial_bits=2)
        assert state.shrink(min_bits=2) == 0
        assert state.r == 2

    def test_replace_slices_validates_width(self):
        state = BitSlicedState(2)
        bad = {name: list(state.slices[name]) for name in VECTOR_NAMES}
        bad["a"] = bad["a"] + [state.manager.false]
        with pytest.raises(ValueError):
            state.replace_slices(bad)

    def test_replace_slices_updates_k(self):
        state = BitSlicedState(2)
        state.replace_slices({name: list(state.slices[name]) for name in VECTOR_NAMES},
                             delta_k=3)
        assert state.k == 3


class TestDecoding:
    def test_coefficient_tuple_two_complement(self):
        state = BitSlicedState(1, initial_bits=3)
        manager = state.manager
        # Manually set a = -3 (binary 101) on the |1> entry.
        q = manager.var(0)
        state.slices["a"][0] = q
        state.slices["a"][1] = manager.false
        state.slices["a"][2] = q
        a, b, c, d, k = state.coefficient_tuple(1)
        assert a == -3
        assert (b, c) == (0, 0)
        assert d == 0 or d == 1  # d bit0 still encodes the initial state

    def test_amplitude_out_of_range(self):
        state = BitSlicedState(2)
        with pytest.raises(ValueError):
            state.amplitude(4)

    def test_to_numpy_and_algebraic_vector(self):
        state = BitSlicedState(2, initial_state=2)
        dense = state.to_numpy()
        assert dense.shape == (4,)
        assert dense[2] == 1.0 + 0j
        vector = state.to_algebraic_vector()
        assert vector[2] == AlgebraicComplex.one()

    def test_qubit_var_range_check(self):
        state = BitSlicedState(2)
        assert state.qubit_var(1) == 1
        with pytest.raises(ValueError):
            state.qubit_var(2)


class TestProjection:
    def test_project_qubit_zeroes_other_branch(self):
        from repro.core.gate_rules import GateRuleEngine
        from repro.circuit.gates import Gate, GateKind

        state = BitSlicedState(2)
        GateRuleEngine(state).apply(Gate(GateKind.H, (0,)))
        state.project_qubit(0, 1, 0.5)
        assert state.amplitude(0b00).is_zero()
        assert state.amplitude(0b01).is_zero()
        assert not state.amplitude(0b10).is_zero()
        assert state.s == pytest.approx(2 ** 0.5)

    def test_project_zero_probability_rejected(self):
        state = BitSlicedState(1)
        with pytest.raises(ValueError):
            state.project_qubit(0, 1, 0.0)

    def test_num_nodes_counts_shared_structure(self):
        state = BitSlicedState(3, initial_state=7)
        # Only one non-constant slice exists, so the node count is small.
        assert state.num_nodes() <= 6

"""Substrate consistency under width growth, GC pressure and instrumentation.

The ISSUE-level risk: overflow-triggered width growth in
:class:`BitSlicedState` interleaved with garbage collections (which recycle
node ids and invalidate computed tables) must never corrupt amplitudes.  The
oracle is the dense statevector engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.statevector import StatevectorSimulator
from repro.bdd import BddManager
from repro.circuit.circuit import QuantumCircuit
from repro.core.simulator import BitSliceSimulator
from repro.harness.experiments import accuracy_circuit


def assert_matches_dense(circuit: QuantumCircuit, manager: BddManager = None):
    exact = BitSliceSimulator(circuit.num_qubits, manager=manager)
    exact.run(circuit)
    dense = StatevectorSimulator.simulate(circuit)
    np.testing.assert_allclose(exact.to_numpy(), dense.state, atol=1e-9)
    return exact


class TestWidthGrowthKeepsCachesConsistent:
    def test_accuracy_circuit_widens_and_stays_exact(self):
        """Deep H/T layers force repeated overflow-driven widening."""
        circuit = accuracy_circuit(3, layers=24)
        exact = assert_matches_dense(circuit)
        assert exact.state.r >= 2

    def test_widening_with_aggressive_gc_threshold(self):
        """A tiny auto-GC threshold forces collections between gates while
        the representation keeps widening; computed tables must be
        generation-invalidated each time, never serving stale ids."""
        circuit = accuracy_circuit(4, layers=12)
        manager = BddManager(4, auto_gc_threshold=64)
        exact = assert_matches_dense(circuit, manager=manager)
        stats = exact.state.substrate_stats()
        assert stats["gc_runs"] > 0
        assert stats["cache_generation"] >= stats["gc_runs"]

    def test_widening_with_bounded_caches(self):
        """Tiny computed tables (constant evictions) must not change
        results, only hit rates."""
        circuit = accuracy_circuit(3, layers=16)
        manager = BddManager(3, cache_size_limit=128)
        exact = assert_matches_dense(circuit, manager=manager)
        assert exact.state.substrate_stats()["cache_evictions"] > 0

    def test_manual_gc_between_gates(self):
        """Explicitly collecting after every gate is the worst case for
        stale-cache bugs: every gate starts from empty tables."""
        circuit = QuantumCircuit(3).h(0).t(0).cx(0, 1).h(1).tdg(1).cx(1, 2).h(2)
        exact = BitSliceSimulator(3)
        for gate in circuit.gates:
            exact.apply_gate(gate)
            exact.state.manager.garbage_collect()
        dense = StatevectorSimulator.simulate(circuit)
        np.testing.assert_allclose(exact.to_numpy(), dense.state, atol=1e-9)


class TestStatisticsCarrySubstrateCounters:
    def test_statistics_include_flattened_perf_stats(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator = BitSliceSimulator.simulate(circuit)
        stats = simulator.statistics()
        assert "substrate_cache_hit_rate" in stats
        assert "substrate_cache_and_hit_rate" in stats
        assert "substrate_unique_probes" in stats
        assert "substrate_gc_runs" in stats
        assert "substrate_peak_live_nodes" in stats
        assert stats["substrate_cache_misses"] > 0
        assert all(isinstance(value, (int, float)) for value in stats.values())

    def test_per_gate_perf_attribution(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(0)
        simulator = BitSliceSimulator.simulate(circuit)
        by_gate = simulator.substrate_perf_by_gate()
        assert by_gate["h"]["applications"] == 2
        assert by_gate["cx"]["applications"] == 1
        assert by_gate["h"]["elapsed_seconds"] >= 0.0
        assert "cache_hit_rate" in by_gate["h"]

    def test_runner_rows_carry_substrate_stats(self):
        from repro.harness.runner import ResourceLimits, run_circuit

        circuit = QuantumCircuit(2, name="bell").h(0).cx(0, 1)
        result = run_circuit("bitslice", circuit, ResourceLimits(max_seconds=30.0))
        assert result.status == "ok"
        assert "substrate_cache_hit_rate" in result.extra
        assert "substrate_gc_pause_seconds" in result.extra

    def test_report_json_carries_extras(self):
        import json

        from repro.harness.experiments import ExperimentResult
        from repro.harness.report import experiment_to_json
        from repro.harness.runner import ResourceLimits, run_circuit

        circuit = QuantumCircuit(2, name="bell").h(0).cx(0, 1)
        result = run_circuit("bitslice", circuit, ResourceLimits(max_seconds=30.0))
        experiment = ExperimentResult("wiring_test")
        experiment.add("bell", "bitslice", [result])
        decoded = json.loads(experiment_to_json(experiment))
        run_row = decoded["groups"][0]["engines"]["bitslice"]["runs"][0]
        assert "substrate_cache_hit_rate" in run_row["extra"]
        summary = decoded["groups"][0]["engines"]["bitslice"]["summary"]
        assert "avg_cache_hit_rate" in summary

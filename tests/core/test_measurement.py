"""Tests for the monolithic-BDD measurement engine (paper Section III-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.core.measurement import ExactProbability, MeasurementEngine
from repro.core.simulator import BitSliceSimulator

from tests.conftest import build_circuit_from_ops, random_ops


def engines_for(circuit: QuantumCircuit):
    simulator = BitSliceSimulator.simulate(circuit)
    reference = StatevectorSimulator.simulate(circuit)
    return simulator, MeasurementEngine(simulator.state), reference


class TestExactProbability:
    def test_zero(self):
        probability = ExactProbability()
        assert probability.is_zero()
        assert probability.to_float() == 0.0

    def test_accumulation_and_scaling(self):
        probability = ExactProbability(k=2)
        probability.add_numerator(1, 1)
        probability.add_numerator(2, -1)
        assert not probability.is_zero()
        assert probability.to_float() == pytest.approx(3 / 4)
        assert probability.scaled(4).to_float() == pytest.approx(3.0)
        assert probability.to_float(extra_scale=2.0) == pytest.approx(3 / 2)

    def test_repr(self):
        assert "sqrt2" in repr(ExactProbability(1, 2, 3))


class TestHyperfunction:
    def test_total_probability_is_exactly_one(self):
        circuit = QuantumCircuit(3).h(0).t(0).cx(0, 1).h(2).s(2).cx(2, 1)
        simulator, engine, _ = engines_for(circuit)
        assert engine.total_probability() == pytest.approx(1.0, abs=1e-15)

    def test_hyperfunction_uses_fresh_variables_below_qubits(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator, engine, _ = engines_for(circuit)
        hyper = engine.build_hyperfunction()
        manager = simulator.state.manager
        assert manager.num_vars > circuit.num_qubits
        # The hyper-function depends on at least one encoding variable.
        assert any(var >= circuit.num_qubits for var in hyper.support())

    def test_rebuilding_after_gates_reflects_new_state(self):
        simulator = BitSliceSimulator(1)
        engine = MeasurementEngine(simulator.state)
        assert engine.probability_of_qubit(0, 0) == pytest.approx(1.0)
        simulator.apply_gate(QuantumCircuit(1).x(0).gates[0])
        assert engine.probability_of_qubit(0, 0) == pytest.approx(0.0)


class TestProbabilityQueries:
    @pytest.mark.parametrize("seed", range(5))
    def test_qubit_probabilities_match_oracle(self, seed):
        ops = random_ops(3, 15, seed)
        circuit = build_circuit_from_ops(3, ops)
        simulator, engine, reference = engines_for(circuit)
        for qubit in range(3):
            for value in (0, 1):
                assert engine.probability_of_qubit(qubit, value) == pytest.approx(
                    reference.probability_of_qubit(qubit, value), abs=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_joint_outcome_probabilities_match_oracle(self, seed):
        ops = random_ops(4, 20, seed + 100)
        circuit = build_circuit_from_ops(4, ops)
        simulator, engine, reference = engines_for(circuit)
        for outcome in range(4):
            bits = [(outcome >> 1) & 1, outcome & 1]
            assert engine.probability_of_outcome([0, 3], bits) == pytest.approx(
                reference.probability_of_outcome([0, 3], bits), abs=1e-9)

    def test_outcome_length_mismatch(self):
        circuit = QuantumCircuit(2).h(0)
        _, engine, _ = engines_for(circuit)
        with pytest.raises(ValueError):
            engine.probability_of_outcome([0, 1], [0])

    @pytest.mark.parametrize("seed", range(3))
    def test_distribution_matches_oracle(self, seed):
        ops = random_ops(3, 12, seed + 50)
        circuit = build_circuit_from_ops(3, ops)
        simulator, engine, reference = engines_for(circuit)
        ours = engine.measurement_distribution()
        expected = reference.measurement_distribution()
        for outcome in range(8):
            assert ours.get(outcome, 0.0) == pytest.approx(expected.get(outcome, 0.0),
                                                           abs=1e-9)

    def test_distribution_over_subset(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        _, engine, _ = engines_for(circuit)
        marginal = engine.measurement_distribution([1])
        assert marginal[0] == pytest.approx(0.5)
        assert marginal[1] == pytest.approx(0.5)


class TestCollapse:
    def test_forced_measurement_collapses_and_renormalises(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator, engine, _ = engines_for(circuit)
        outcome = engine.measure_qubit(0, forced_outcome=1)
        assert outcome == 1
        # p = 1/2 is an exact power of two, so the 1/sqrt(p) renormalisation
        # folds into the global exponent k exactly; s stays at exactly 1.0
        # and the collapsed state remains exact (|11> with amplitude 1).
        assert simulator.state.s == 1.0
        assert simulator.state.k == 0
        assert simulator.amplitude(0b11).to_complex() == 1.0
        # After the collapse, qubit 1 must be 1 with certainty.
        assert engine.probability_of_qubit(1, 1) == pytest.approx(1.0)
        assert engine.total_probability() == pytest.approx(1.0)

    def test_sequential_measurement_of_all_qubits(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        simulator, engine, _ = engines_for(circuit)
        outcomes = engine.measure_qubits([0, 1, 2], forced_outcomes=[0, 0, 0])
        assert outcomes == [0, 0, 0]
        assert engine.probability_of_outcome([0, 1, 2], [0, 0, 0]) == pytest.approx(1.0)

    def test_random_measurement_follows_distribution(self, rng):
        circuit = QuantumCircuit(1).h(0)
        ones = 0
        trials = 200
        for trial in range(trials):
            simulator = BitSliceSimulator.simulate(circuit)
            ones += simulator.measure_qubit(0, rng=rng)
        # A fair coin: 200 trials land in [60, 140] except with ~1e-9 chance.
        assert 60 <= ones <= 140

    def test_collapse_onto_impossible_outcome_rejected(self):
        circuit = QuantumCircuit(2).x(0)
        simulator, engine, _ = engines_for(circuit)
        with pytest.raises(ValueError):
            engine.measure_qubit(0, forced_outcome=0)


class TestSampling:
    def test_sampling_distribution_on_bell_state(self, rng):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator, engine, _ = engines_for(circuit)
        counts = engine.sample(1000, rng=rng)
        assert set(counts) <= {0b00, 0b11}
        assert sum(counts.values()) == 1000
        assert 350 <= counts.get(0b00, 0) <= 650

    def test_sampling_does_not_collapse(self, rng):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        simulator, engine, _ = engines_for(circuit)
        engine.sample(50, rng=rng)
        assert simulator.state.s == 1.0
        assert engine.probability_of_qubit(0, 0) == pytest.approx(0.5)

    def test_sampling_subset_of_qubits(self, rng):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).x(2)
        simulator, engine, _ = engines_for(circuit)
        counts = engine.sample(200, qubits=[2], rng=rng)
        assert counts == {1: 200}

    def test_per_shot_descent_path(self, rng):
        """Exercise the per-shot sampling branch used for wide registers."""
        circuit = QuantumCircuit(18)
        circuit.h(0)
        for qubit in range(17):
            circuit.cx(qubit, qubit + 1)
        simulator, engine, _ = engines_for(circuit)
        counts = engine.sample(5, rng=rng)
        assert sum(counts.values()) == 5
        assert set(counts) <= {0, (1 << 18) - 1}

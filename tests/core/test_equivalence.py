"""Tests for exact equivalence checking."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.equivalence import (
    EquivalenceReport,
    circuits_equivalent,
    states_equal_exact,
)


class TestStatesEqualExact:
    def test_identical_circuits(self):
        left = QuantumCircuit(2).h(0).t(0).cx(0, 1)
        right = QuantumCircuit(2).h(0).t(0).cx(0, 1)
        assert states_equal_exact(left, right)

    def test_known_identity_swap_as_three_cnots(self):
        swap = QuantumCircuit(2).swap(0, 1)
        cnots = QuantumCircuit(2).cx(0, 1).cx(1, 0).cx(0, 1)
        for basis in range(4):
            assert states_equal_exact(swap, cnots, initial_state=basis)

    def test_global_phase_difference_is_detected(self):
        # Z X and X Z differ by a global phase of -1; exact comparison of the
        # algebraic coefficients must notice.
        left = QuantumCircuit(1).x(0).z(0)
        right = QuantumCircuit(1).z(0).x(0)
        assert not states_equal_exact(left, right, initial_state=0)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            states_equal_exact(QuantumCircuit(1).x(0), QuantumCircuit(2).x(0))


class TestCircuitsEquivalent:
    def test_hadamard_conjugation_identity(self):
        # H X H == Z, checked on every basis input.
        left = QuantumCircuit(1).h(0).x(0).h(0)
        right = QuantumCircuit(1).z(0)
        report = circuits_equivalent(left, right)
        assert report.equivalent
        assert report.counterexample is None
        assert report.checked_inputs == [0, 1]
        assert bool(report)

    def test_t_to_the_eighth_is_identity(self):
        left = QuantumCircuit(1)
        for _ in range(8):
            left.t(0)
        right = QuantumCircuit(1)
        assert circuits_equivalent(left, right).equivalent

    def test_difference_reports_counterexample(self):
        left = QuantumCircuit(2).cx(0, 1)
        right = QuantumCircuit(2).cx(1, 0)
        report = circuits_equivalent(left, right)
        assert not report.equivalent
        assert report.counterexample is not None
        assert not states_equal_exact(left, right, initial_state=report.counterexample)

    def test_s_squared_equals_z(self):
        left = QuantumCircuit(1).s(0).s(0)
        right = QuantumCircuit(1).z(0)
        assert circuits_equivalent(left, right).equivalent

    def test_sampling_mode_for_wide_registers(self):
        num_qubits = 10
        left = QuantumCircuit(num_qubits)
        right = QuantumCircuit(num_qubits)
        for qubit in range(num_qubits):
            left.h(qubit).h(qubit)
        report = circuits_equivalent(left, right, max_exhaustive_qubits=6, samples=5)
        assert report.equivalent
        assert len(report.checked_inputs) <= 6
        assert 0 in report.checked_inputs

    def test_sampling_mode_detects_gross_differences(self):
        num_qubits = 10
        left = QuantumCircuit(num_qubits).x(3)
        right = QuantumCircuit(num_qubits)
        report = circuits_equivalent(left, right, max_exhaustive_qubits=6, samples=5)
        assert not report.equivalent

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            circuits_equivalent(QuantumCircuit(1), QuantumCircuit(2))

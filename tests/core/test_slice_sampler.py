"""The exact slice sampler: Gram-matrix masses and batched restrictions.

Every probability the sampler reports is checked against the independently
implemented monolithic-BDD measurement engine (paper Eq. 12), so the two
exact paths cross-validate each other node for node.
"""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.sampling import SliceSampler, sample_state
from repro.core.simulator import BitSliceSimulator


def prepared(circuit):
    return BitSliceSimulator.simulate(circuit)


def all_prefixes(n, depth):
    if depth == 0:
        return [()]
    shorter = all_prefixes(n, depth - 1)
    return [prefix + (bit,) for prefix in shorter for bit in (0, 1)]


class TestMassesAgainstHyperfunction:
    @pytest.mark.parametrize("builder", [
        lambda: QuantumCircuit(3, name="ghz").h(0).cx(0, 1).cx(1, 2),
        lambda: QuantumCircuit(3, name="t_layers").h(0).t(0).cx(0, 1).t(1)
                .h(2).s(2).cx(2, 0),
        lambda: QuantumCircuit(4, name="mixed").h(0).h(1).ccx([0, 1], 2)
                .t(2).cx(2, 3).h(3),
    ], ids=["ghz", "t_layers", "mixed"])
    def test_every_prefix_probability_matches(self, builder):
        circuit = builder()
        simulator = prepared(circuit)
        n = circuit.num_qubits
        sampler = SliceSampler(simulator.state, list(range(n)))
        for depth in range(n + 1):
            for prefix in all_prefixes(n, depth):
                expected = simulator.probability_of_outcome(
                    list(range(depth)), list(prefix))
                assert sampler.prefix_probability(prefix) == pytest.approx(
                    expected, abs=1e-12), prefix

    def test_root_mass_is_unity(self):
        simulator = prepared(QuantumCircuit(5, name="h5").h(0).h(1).h(2).h(3).h(4))
        sampler = SliceSampler(simulator.state, list(range(5)))
        assert sampler.prefix_probability(()) == pytest.approx(1.0, abs=1e-12)

    def test_mass_is_exact_integer_pair(self):
        simulator = prepared(QuantumCircuit(2, name="bell").h(0).cx(0, 1))
        sampler = SliceSampler(simulator.state, [0, 1])
        # k = 1, depth 1: Pr[q0=0] = 1/2 = x / 2**(k + depth) with x = 2.
        assert sampler.prefix_mass((0,)) == (2, 0)

    def test_qubit_order_respected(self):
        circuit = QuantumCircuit(2, name="x0").x(0)
        simulator = prepared(circuit)
        sampler = SliceSampler(simulator.state, [1, 0])
        assert sampler.prefix_probability((0,)) == pytest.approx(1.0)
        assert sampler.prefix_probability((0, 1)) == pytest.approx(1.0)


class TestSampleState:
    def test_counts_sum_and_support(self):
        circuit = QuantumCircuit(3, name="ghz").h(0).cx(0, 1).cx(1, 2)
        simulator = prepared(circuit)
        counts = sample_state(simulator.state, 999,
                              rng=np.random.default_rng(4))
        assert sum(counts.values()) == 999
        assert set(counts) <= {0b000, 0b111}

    def test_sampling_does_not_collapse(self):
        circuit = QuantumCircuit(2, name="bell").h(0).cx(0, 1)
        simulator = prepared(circuit)
        sample_state(simulator.state, 100, rng=np.random.default_rng(0))
        assert simulator.probability_of_qubit(0, 0) == pytest.approx(0.5)
        assert simulator.state.s == 1.0

    def test_wide_register_sampling_is_cheap(self):
        """A 40-qubit GHZ state samples fine: cost scales with distinct
        outcomes, not 2**n."""
        n = 40
        circuit = QuantumCircuit(n, name="ghz40").h(0)
        for qubit in range(n - 1):
            circuit.cx(qubit, qubit + 1)
        simulator = prepared(circuit)
        counts = sample_state(simulator.state, 1000,
                              rng=np.random.default_rng(1))
        assert set(counts) <= {0, (1 << n) - 1}
        assert sum(counts.values()) == 1000

    def test_work_counters(self):
        circuit = QuantumCircuit(3, name="ghz").h(0).cx(0, 1).cx(1, 2)
        simulator = prepared(circuit)
        sampler = SliceSampler(simulator.state, [0, 1, 2])
        from repro.engines.sampling import sample_by_descent

        sample_by_descent(sampler.branch_probability, 3, 256,
                          np.random.default_rng(2))
        stats = sampler.statistics()
        assert stats["sampler_restrict_batches"] > 0
        assert stats["sampler_mass_evaluations"] > 0
        assert stats["sampler_distinct_prefixes"] == stats["sampler_restrict_batches"]

"""Tests for symbolic support queries of the bit-sliced state."""

from __future__ import annotations

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.simulator import BitSliceSimulator
from repro.workloads.algorithms import ghz_circuit


class TestNonzeroSupport:
    def test_basis_state_has_single_support(self):
        simulator = BitSliceSimulator(3, initial_state=5)
        assert simulator.nonzero_amplitude_count() == 1
        support = simulator.state.nonzero_support()
        assert support.satcount(3) == 1
        assert support.evaluate({0: True, 1: False, 2: True}) is True

    def test_uniform_superposition_has_full_support(self):
        circuit = QuantumCircuit(4)
        for qubit in range(4):
            circuit.h(qubit)
        simulator = BitSliceSimulator.simulate(circuit)
        assert simulator.nonzero_amplitude_count() == 16

    def test_ghz_has_two_support_states(self):
        simulator = BitSliceSimulator.simulate(ghz_circuit(6))
        assert simulator.nonzero_amplitude_count() == 2

    def test_wide_register_counting_is_symbolic(self):
        # 60-qubit GHZ: enumeration of 2^60 amplitudes is impossible, the
        # symbolic count is instant.
        simulator = BitSliceSimulator.simulate(ghz_circuit(60))
        assert simulator.nonzero_amplitude_count() == 2
        # Uniform superposition over 60 qubits: support size 2^60.
        circuit = QuantumCircuit(60)
        for qubit in range(60):
            circuit.h(qubit)
        uniform = BitSliceSimulator.simulate(circuit)
        assert uniform.nonzero_amplitude_count() == 1 << 60

    def test_support_shrinks_after_collapse(self):
        simulator = BitSliceSimulator.simulate(ghz_circuit(5))
        simulator.measure_qubit(0, forced_outcome=1)
        assert simulator.nonzero_amplitude_count() == 1

    def test_interference_can_empty_part_of_the_support(self):
        # H Z H |0> = |1>: destructive interference removes |0> from the
        # support even though intermediate states covered both basis states.
        circuit = QuantumCircuit(1).h(0).z(0).h(0)
        simulator = BitSliceSimulator.simulate(circuit)
        assert simulator.nonzero_amplitude_count() == 1
        assert simulator.probability_of_qubit(0, 1) == pytest.approx(1.0)

"""Property-based tests of the bit-sliced engine (hypothesis).

The key invariants:

* agreement with the dense statevector oracle on arbitrary circuits over the
  full gate set,
* exact unitarity (total probability is exactly 1 — not within epsilon),
* applying a circuit followed by its inverse restores the initial basis
  state exactly,
* the decoded algebraic coefficients always satisfy the normalisation
  constraint of paper Eq. (2).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.statevector import StatevectorSimulator
from repro.core.simulator import BitSliceSimulator

from tests.conftest import OP_ARITY, build_circuit_from_ops

NUM_QUBITS = 3

INVERTIBLE_OPS = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "cx", "cz",
                  "swap", "ccx", "cswap")


@st.composite
def op_lists(draw, mnemonics=tuple(OP_ARITY), max_size=20):
    size = draw(st.integers(min_value=0, max_value=max_size))
    ops = []
    for _ in range(size):
        mnemonic = draw(st.sampled_from([m for m in mnemonics
                                         if OP_ARITY[m] <= NUM_QUBITS]))
        qubits = draw(st.permutations(list(range(NUM_QUBITS))))
        ops.append((mnemonic, tuple(qubits[:OP_ARITY[mnemonic]])))
    return ops


@settings(max_examples=40, deadline=None)
@given(op_lists(), st.integers(min_value=0, max_value=(1 << NUM_QUBITS) - 1))
def test_matches_statevector_oracle(ops, initial_state):
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    ours = BitSliceSimulator.simulate(circuit, initial_state=initial_state).to_numpy()
    reference = StatevectorSimulator.simulate(circuit, initial_state=initial_state).state
    assert np.max(np.abs(ours - reference)) < 1e-9


@settings(max_examples=30, deadline=None)
@given(op_lists())
def test_total_probability_exactly_one(ops):
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    simulator = BitSliceSimulator.simulate(circuit)
    # Exactness: the accumulated probability numerator is integer arithmetic,
    # so the only rounding happens in the final float conversion.
    assert abs(simulator.total_probability() - 1.0) < 1e-12


@settings(max_examples=30, deadline=None)
@given(op_lists(mnemonics=INVERTIBLE_OPS),
       st.integers(min_value=0, max_value=(1 << NUM_QUBITS) - 1))
def test_circuit_followed_by_inverse_is_identity(ops, initial_state):
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    round_trip = circuit.compose(circuit.inverse())
    simulator = BitSliceSimulator.simulate(round_trip, initial_state=initial_state)
    for basis in range(1 << NUM_QUBITS):
        amplitude = simulator.amplitude(basis)
        if basis == initial_state:
            assert amplitude.to_complex() == 1.0
        else:
            assert amplitude.is_zero()


@settings(max_examples=30, deadline=None)
@given(op_lists())
def test_norm_constraint_of_paper_eq2(ops):
    """Sum over basis states of |alpha_i|^2 equals 1 exactly (Eq. 2)."""
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    simulator = BitSliceSimulator.simulate(circuit)
    total_x, total_y = 0, 0
    k = simulator.state.k
    for basis in range(1 << NUM_QUBITS):
        x, y, amp_k = simulator.amplitude(basis).abs_squared_exact()
        assert amp_k <= k
        # Rescale the canonical amplitude back to the shared exponent.
        total_x += x * (1 << (k - amp_k))
        total_y += y * (1 << (k - amp_k))
    assert total_y == 0
    assert total_x == (1 << k)


@settings(max_examples=25, deadline=None)
@given(op_lists(), st.integers(min_value=0, max_value=NUM_QUBITS - 1))
def test_marginal_probabilities_are_consistent(ops, qubit):
    circuit = build_circuit_from_ops(NUM_QUBITS, ops)
    simulator = BitSliceSimulator.simulate(circuit)
    p_zero = simulator.probability_of_qubit(qubit, 0)
    p_one = simulator.probability_of_qubit(qubit, 1)
    assert 0.0 <= p_zero <= 1.0 + 1e-12
    assert p_zero + p_one == 1.0 or abs(p_zero + p_one - 1.0) < 1e-12

"""Test package."""

"""Reordering invariants at the simulator level.

The gate rules address qubits by variable *index* and the substrate's
operations resolve levels at call time, so the variable order may change at
any gate boundary — manually (``BitSliceSimulator.sift``) or automatically
(``auto_reorder_threshold``) — without changing a single amplitude,
probability or fixed-seed sampled count.  These tests pin that contract on
random circuits and on the RevLib-style Table IV workloads, including the
sampler's batched slice restrictions running at post-reorder levels.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.sampling import SliceSampler, sample_state
from repro.core.simulator import BitSliceSimulator
from repro.engines.sampling import sample_by_descent
from repro.workloads.revlib import h_augment, ripple_carry_adder

from tests.conftest import build_circuit_from_ops, random_ops

NUM_QUBITS = 5


def _reference_run(circuit):
    simulator = BitSliceSimulator(circuit.num_qubits)
    simulator.run(circuit)
    return simulator


def _amplitudes(simulator):
    return [simulator.amplitude(i)
            for i in range(1 << simulator.num_qubits)]


class TestGatesTolerateLevelChanges:
    @pytest.mark.parametrize("seed", range(6))
    def test_sift_between_gates_preserves_amplitudes(self, seed):
        ops = random_ops(NUM_QUBITS, 18, seed)
        circuit = build_circuit_from_ops(NUM_QUBITS, ops)
        reference = _reference_run(circuit)
        expected = _amplitudes(reference)

        simulator = BitSliceSimulator(NUM_QUBITS)
        rng = random.Random(seed)
        for gate in circuit.gates:
            simulator.apply_gate(gate)
            if rng.random() < 0.3:
                simulator.sift()
        assert _amplitudes(simulator) == expected
        assert simulator.state.k == reference.state.k

    @pytest.mark.parametrize("seed", range(6))
    def test_adjacent_swaps_between_gates_preserve_amplitudes(self, seed):
        ops = random_ops(NUM_QUBITS, 15, seed + 50)
        circuit = build_circuit_from_ops(NUM_QUBITS, ops)
        expected = _amplitudes(_reference_run(circuit))

        simulator = BitSliceSimulator(NUM_QUBITS)
        manager = simulator.state.manager
        rng = random.Random(seed)
        for gate in circuit.gates:
            simulator.apply_gate(gate)
            manager.swap_adjacent_levels(rng.randrange(NUM_QUBITS - 1))
        assert _amplitudes(simulator) == expected

    def test_auto_reorder_threshold_preserves_final_probability(self):
        circuit, constants = ripple_carry_adder(5)
        modified = h_augment(circuit, constants)
        reference = _reference_run(modified)
        qubits = list(range(modified.num_qubits))
        zeros = [0] * modified.num_qubits
        expected = reference.probability_of_outcome(qubits, zeros)

        simulator = BitSliceSimulator(modified.num_qubits,
                                      auto_reorder_threshold=40)
        simulator.run(modified)
        assert simulator.state.manager.perf_stats()["reorder_count"] >= 1
        assert simulator.probability_of_outcome(qubits, zeros) == pytest.approx(
            expected, abs=1e-15)

    def test_sift_reduces_nodes_on_revlib_adder(self):
        """The acceptance benchmark's claim, pinned as a test: sifting the
        modified ripple-carry adder shrinks the live node count (the
        natural wire order separates the two addend registers, which is
        the textbook-bad order for adder BDDs)."""
        circuit, constants = ripple_carry_adder(6)
        modified = h_augment(circuit, constants)
        simulator = _reference_run(modified)
        before = simulator.state.num_nodes()
        stats = simulator.sift()
        after = simulator.state.num_nodes()
        assert stats["nodes_after"] < stats["nodes_before"]
        assert after < before


class TestSamplingAcrossReorders:
    @pytest.mark.parametrize("seed", range(4))
    def test_fixed_seed_counts_invariant_under_sift(self, seed):
        ops = random_ops(NUM_QUBITS, 16, seed + 200)
        circuit = build_circuit_from_ops(NUM_QUBITS, ops)
        reference = _reference_run(circuit)
        expected = sample_state(reference.state, 150,
                                rng=np.random.default_rng(seed))

        sifted = _reference_run(circuit)
        sifted.sift()
        counts = sample_state(sifted.state, 150,
                              rng=np.random.default_rng(seed))
        assert counts == expected

    def test_sampler_survives_reorder_mid_descent(self):
        """A reorder between descent steps must not corrupt the sampler:
        its restricted families are anchored in handles and its batched
        restrictions address variables by index, so each batch simply runs
        at the post-reorder levels (and the node-id-keyed satcount memo is
        flushed by the generation bump)."""
        circuit = build_circuit_from_ops(
            NUM_QUBITS, random_ops(NUM_QUBITS, 14, 77))
        simulator = _reference_run(circuit)
        qubits = list(range(NUM_QUBITS))
        oracle = SliceSampler(simulator.state, qubits)
        expected = [oracle.prefix_probability((0,) * n)
                    for n in range(1, NUM_QUBITS + 1)]

        probed = SliceSampler(simulator.state, qubits)
        values = []
        for n in range(1, NUM_QUBITS + 1):
            values.append(probed.prefix_probability((0,) * n))
            simulator.sift()  # reorder (and GC) between descent steps
        assert values == pytest.approx(expected, abs=1e-14)

    def test_descent_counts_equal_with_reorder_interleaved(self):
        circuit = build_circuit_from_ops(
            NUM_QUBITS, random_ops(NUM_QUBITS, 16, 88))
        reference = _reference_run(circuit)
        expected = sample_state(reference.state, 100,
                                rng=np.random.default_rng(3))

        simulator = _reference_run(circuit)
        sampler = SliceSampler(simulator.state, list(range(NUM_QUBITS)))

        def branch_probability(prefix):
            if len(prefix) == 2:  # reorder while the descent is running
                simulator.state.manager.swap_adjacent_levels(0)
            return sampler.prefix_probability(tuple(prefix))

        counts = sample_by_descent(branch_probability, NUM_QUBITS, 100,
                                   np.random.default_rng(3))
        assert counts == expected

"""Tests for the batched gate-rule plumbing added with the fused kernels.

The full gate semantics are already pinned against the dense oracle in
``test_gate_rules.py``; these tests cover the new machinery specifically:
the lockstep batched adder vs the reference composition adder, the memoised
control cubes, and the one-pass widen / shrink of the state.
"""

from __future__ import annotations

import random

from repro.bdd import Bdd
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind
from repro.core.bitslice import VECTOR_NAMES, BitSlicedState
from repro.core.gate_rules import GateRuleEngine
from repro.core.simulator import BitSliceSimulator


def _prepared_engine(num_qubits=4, seed=11):
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        getattr(circuit, rng.choice(("t", "s", "h")))(qubit)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    simulator = BitSliceSimulator(num_qubits)
    simulator.run(circuit)
    return GateRuleEngine(simulator.state)


class TestBatchedAdder:
    def test_ripple_add_many_matches_reference(self):
        engine = _prepared_engine()
        state = engine.state
        qt = engine._qvar_node(0)
        qt_handle = Bdd(state.manager, qt)
        adders = []
        expected = []
        names = list(VECTOR_NAMES)
        for own, other in zip(names, names[1:] + names[:1]):
            a_bits = [bit.node for bit in state.slices[own]]
            b_bits = [bit.node for bit in state.slices[other]]
            adders.append((a_bits, b_bits, qt))
            expected.append(engine._ripple_add(
                list(state.slices[own]), list(state.slices[other]), qt_handle))
        sums, overflowed = engine._ripple_add_many(adders)
        assert overflowed == any(over for _, over in expected)
        for fused_bits, (reference_bits, _) in zip(sums, expected):
            assert fused_bits == [bit.node for bit in reference_bits]

    def test_conditional_negate_matches_reference(self):
        engine = _prepared_engine(seed=29)
        state = engine.state
        condition_handle = state.manager.var(1)
        update = engine._conditional_negate_all(condition_handle.node)
        for name in VECTOR_NAMES:
            reference, _ = engine._conditional_negate_add(
                list(state.slices[name]), condition_handle)
            assert update.slices[name] == reference

    def test_mismatched_widths_rejected(self):
        engine = _prepared_engine()
        import pytest

        with pytest.raises(ValueError):
            engine._ripple_add_many([([0, 0], [0], 0)])


class TestControlCubeMemo:
    def test_cube_is_reused_per_sorted_controls(self):
        engine = _prepared_engine()
        first = engine._control_conjunction((2, 0, 1))
        second = engine._control_conjunction((1, 2, 0))
        assert first is second  # memo hit, not merely an equal BDD
        assert engine._control_conjunction((0, 1)) is not first

    def test_repeated_toffolis_reuse_the_cube(self):
        engine = _prepared_engine()
        gate = Gate(GateKind.CCX, (3,), (0, 1))
        engine.apply(gate)
        cube = engine._control_cubes[(0, 1)]
        engine.apply(gate)
        assert engine._control_cubes[(0, 1)] is cube

    def test_memo_dropped_on_generation_change(self):
        engine = _prepared_engine()
        engine._control_conjunction((0, 1))
        engine.manager.garbage_collect()  # bumps the cache generation
        engine._control_conjunction((0, 2))
        assert (0, 1) not in engine._control_cubes
        assert (0, 2) in engine._control_cubes


class TestBatchedWidenShrink:
    def test_widen_to_extends_in_one_pass(self):
        state = BitSlicedState(3, initial_bits=2)
        state.widen_to(6)
        assert state.r == 6
        for name in VECTOR_NAMES:
            bits = state.slices[name]
            assert len(bits) == 6
            assert all(bit == bits[1] for bit in bits[1:])  # shared sign
        state.widen_to(4)  # no-op when already wider
        assert state.r == 6

    def test_shrink_removes_full_redundant_run_at_once(self):
        state = BitSlicedState(3, initial_bits=2)
        state.widen(5)
        assert state.r == 7
        removed = state.shrink()
        assert removed == 5
        assert state.r == 2

    def test_shrink_respects_min_bits_and_distinct_signs(self):
        state = BitSlicedState(2, initial_bits=2)
        assert state.shrink() == 0
        state.widen(3)
        # Make the top slice of one vector distinct: nothing is redundant.
        state.slices["a"][-1] = state.manager.var(0)
        assert state.shrink() == 0
        assert state.r == 5

    def test_shrink_stops_at_first_distinct_slice(self):
        state = BitSlicedState(2, initial_bits=2)
        state.widen(4)  # r = 6, slices 1..5 all equal the sign of slice 1
        marker = state.manager.var(1)
        for name in VECTOR_NAMES:
            state.slices[name][3] = marker
        # Slices 4 and 5 equal each other but differ from slice 3's marker:
        # exactly one slice is removable (6 -> 5), then the run breaks.
        assert state.shrink() == 1
        assert state.r == 5


class TestEngineStillExact:
    def test_simulation_is_deterministic_across_runs(self):
        def run():
            circuit = QuantumCircuit(4)
            for qubit in range(4):
                circuit.h(qubit)
            circuit.t(0).cx(0, 1).h(1).t(1).cx(1, 2).h(2).ccx((3, 0), 1)
            circuit.swap(0, 3).s(2).h(3).tdg(2)
            simulator = BitSliceSimulator.simulate(circuit)
            return simulator.state.to_numpy(), simulator.state.r

        first_state, first_r = run()
        second_state, second_r = run()
        assert first_r == second_r
        assert (first_state == second_state).all()

"""Tests for the Table II gate update rules.

Every supported gate is validated two ways:

* **column check** — applied to every computational basis state, the decoded
  dense state must equal the corresponding column of the gate's unitary
  (checked against the dense statevector simulator);
* **superposition check** — applied after a state-preparation prefix that
  produces non-trivial algebraic coefficients (so the symbolic adders and the
  carry logic are genuinely exercised), the result must match the dense
  oracle again.

Additional tests cover dynamic width growth on overflow, the exactness of the
algebraic coefficients against the dense exact oracle, and rejection of
unsupported gates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra import AlgebraicVector
from repro.baselines.statevector import StatevectorSimulator
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind, gate_matrix_exact
from repro.core.bitslice import BitSlicedState
from repro.core.gate_rules import GateRuleEngine
from repro.core.simulator import BitSliceSimulator
from repro.exceptions import UnsupportedGateError

SINGLE_QUBIT_KINDS = [
    GateKind.X, GateKind.Y, GateKind.Z, GateKind.H, GateKind.S, GateKind.SDG,
    GateKind.T, GateKind.TDG, GateKind.RX_PI_2, GateKind.RY_PI_2,
]


def apply_gates_bitsliced(num_qubits, gates, initial_state=0):
    state = BitSlicedState(num_qubits, initial_state=initial_state)
    engine = GateRuleEngine(state)
    for gate in gates:
        engine.apply(gate)
    return state


def reference_state(num_qubits, gates, initial_state=0):
    simulator = StatevectorSimulator(num_qubits, initial_state=initial_state)
    for gate in gates:
        simulator.apply_gate(gate)
    return simulator.state


def preparation_gates(num_qubits):
    """A prefix creating a superposed state with non-trivial coefficients."""
    gates = [Gate(GateKind.H, (q,)) for q in range(num_qubits)]
    gates.append(Gate(GateKind.T, (0,)))
    gates.append(Gate(GateKind.H, (0,)))
    if num_qubits > 1:
        gates.append(Gate(GateKind.CX, (1,), (0,)))
        gates.append(Gate(GateKind.T, (1,)))
    return gates


class TestSingleQubitGates:
    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_columns_match_oracle(self, kind, target):
        gate = Gate(kind, (target,))
        for basis in range(8):
            state = apply_gates_bitsliced(3, [gate], initial_state=basis)
            expected = reference_state(3, [gate], initial_state=basis)
            assert np.max(np.abs(state.to_numpy() - expected)) < 1e-12

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    @pytest.mark.parametrize("target", [0, 1])
    def test_superposed_input_matches_oracle(self, kind, target):
        prefix = preparation_gates(2)
        gates = prefix + [Gate(kind, (target,))]
        state = apply_gates_bitsliced(2, gates)
        expected = reference_state(2, gates)
        assert np.max(np.abs(state.to_numpy() - expected)) < 1e-12

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    def test_k_increment_matches_spec(self, kind):
        state = apply_gates_bitsliced(1, [Gate(kind, (0,))])
        from repro.circuit.gates import GATE_SPECS

        assert state.k == GATE_SPECS[kind].k_increment


class TestMultiQubitGates:
    cases = [
        Gate(GateKind.CX, (1,), (0,)),
        Gate(GateKind.CX, (0,), (2,)),
        Gate(GateKind.CZ, (2,), (1,)),
        Gate(GateKind.CCX, (2,), (0, 1)),
        Gate(GateKind.CCX, (0,), (1, 2)),
        Gate(GateKind.CSWAP, (1, 2), (0,)),
        Gate(GateKind.CSWAP, (0, 1), (2,)),
        Gate(GateKind.SWAP, (0, 2)),
    ]

    @pytest.mark.parametrize("gate", cases, ids=lambda g: str(g))
    def test_columns_match_oracle(self, gate):
        for basis in range(8):
            state = apply_gates_bitsliced(3, [gate], initial_state=basis)
            expected = reference_state(3, [gate], initial_state=basis)
            assert np.max(np.abs(state.to_numpy() - expected)) < 1e-12

    @pytest.mark.parametrize("gate", cases, ids=lambda g: str(g))
    def test_superposed_input_matches_oracle(self, gate):
        prefix = preparation_gates(3)
        gates = prefix + [gate]
        state = apply_gates_bitsliced(3, gates)
        expected = reference_state(3, gates)
        assert np.max(np.abs(state.to_numpy() - expected)) < 1e-12

    def test_multi_control_toffoli(self):
        gate = Gate(GateKind.CCX, (3,), (0, 1, 2))
        for basis in (0b0000, 0b1110, 0b1111, 0b1010):
            state = apply_gates_bitsliced(4, [gate], initial_state=basis)
            expected = reference_state(4, [gate], initial_state=basis)
            assert np.max(np.abs(state.to_numpy() - expected)) < 1e-12


class TestExactness:
    def test_exact_agreement_with_algebraic_oracle(self):
        """The bit-sliced coefficients must equal the dense exact oracle's
        coefficients *as integers*, not merely within float tolerance."""
        circuit_gates = preparation_gates(2) + [
            Gate(GateKind.S, (1,)), Gate(GateKind.H, (1,)), Gate(GateKind.T, (0,)),
            Gate(GateKind.CZ, (1,), (0,)), Gate(GateKind.H, (0,)),
        ]
        state = apply_gates_bitsliced(2, circuit_gates)

        oracle = AlgebraicVector.basis_state(2, 0)
        for gate in circuit_gates:
            if gate.kind in (GateKind.CX, GateKind.CZ, GateKind.CCX):
                oracle.apply_controlled(gate_matrix_exact(gate.kind),
                                        gate.controls, gate.targets[0])
            elif gate.kind in (GateKind.SWAP, GateKind.CSWAP):
                oracle.apply_swap(gate.controls, *gate.targets)
            else:
                oracle.apply_single_qubit(gate_matrix_exact(gate.kind), gate.targets[0])

        assert state.to_algebraic_vector() == oracle

    def test_t_gate_eighth_power_is_identity(self):
        gates = preparation_gates(2) + [Gate(GateKind.T, (1,))] * 8
        with_t = apply_gates_bitsliced(2, gates)
        without_t = apply_gates_bitsliced(2, preparation_gates(2))
        assert with_t.to_algebraic_vector() == without_t.to_algebraic_vector()

    def test_hadamard_twice_is_identity_up_to_k(self):
        gates = [Gate(GateKind.H, (0,)), Gate(GateKind.H, (0,))]
        state = apply_gates_bitsliced(1, gates)
        # H^2 = I, but each H contributed a 1/sqrt(2): coefficients double
        # and k reaches 2, which the canonical amplitude hides again.
        assert state.amplitude(0).to_complex() == pytest.approx(1.0)
        assert state.amplitude(1).is_zero()
        assert state.k == 2


class TestWidthGrowth:
    def test_repeated_hadamards_widen_the_representation(self):
        """H on the same qubit of a superposition doubles coefficients, so
        the two's-complement width must grow beyond the initial 2 bits."""
        state = BitSlicedState(4, initial_bits=2)
        engine = GateRuleEngine(state)
        for qubit in range(4):
            engine.apply(Gate(GateKind.H, (qubit,)))
        for _ in range(3):
            engine.apply(Gate(GateKind.H, (0,)))
            engine.apply(Gate(GateKind.CX, (1,), (0,)))
            engine.apply(Gate(GateKind.H, (0,)))
        assert state.r >= 2
        reference = reference_state(4, [Gate(GateKind.H, (q,)) for q in range(4)]
                                    + [Gate(GateKind.H, (0,)), Gate(GateKind.CX, (1,), (0,)),
                                       Gate(GateKind.H, (0,))] * 3)
        assert np.max(np.abs(state.to_numpy() - reference)) < 1e-12

    def test_ghz_plus_interference_is_exact(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).h(0).h(1).h(2)
        state = BitSliceSimulator.simulate(circuit).state
        expected = StatevectorSimulator.simulate(circuit).state
        assert np.max(np.abs(state.to_numpy() - expected)) < 1e-12

    def test_overflow_retry_limit(self):
        state = BitSlicedState(1, initial_bits=2)
        engine = GateRuleEngine(state)
        with pytest.raises(RuntimeError):
            engine.apply(Gate(GateKind.H, (0,)), max_widen_retries=0)


class TestUnsupported:
    def test_unsupported_gate_kind(self):
        state = BitSlicedState(1)
        engine = GateRuleEngine(state)
        with pytest.raises(UnsupportedGateError):
            engine.apply(Gate(GateKind.MEASURE, (0,)))

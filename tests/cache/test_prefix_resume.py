"""Prefix-resume correctness: byte-identity, invalidation, concurrency."""

import json

import pytest

import repro
from repro import QuantumCircuit, SessionPool
from repro.cache import gate_tokens
from repro.engines.registry import create_engine
from tests.conftest import layered


def deterministic(result):
    return json.dumps(result.to_dict(timings=False), sort_keys=True)


def extend(circuit, name="extended"):
    extended = circuit.copy(name=name)
    extended.t(1).h(2).cx(2, 3)
    return extended


class TestResumeCorrectness:
    def test_resumed_run_is_byte_identical_to_cold(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        extended = extend(base)
        resumed = repro.run(extended, engine="bitslice", sessions=pool)
        assert resumed.extra.get("resumed_from_depth") == base.num_gates
        cold = repro.run(extended, engine="bitslice")
        assert deterministic(resumed) == deterministic(cold)
        assert resumed.peak_memory_nodes == cold.peak_memory_nodes
        assert resumed.final_probability == cold.final_probability

    def test_fixed_seed_counts_identical_on_resume(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        extended = extend(base).measure_all()
        resumed = repro.run(extended, engine="bitslice", sessions=pool,
                            shots=512, seed=5)
        assert resumed.extra.get("resumed_from_depth") == base.num_gates
        cold = repro.run(extend(base).measure_all(), engine="bitslice",
                         shots=512, seed=5)
        assert resumed.counts == cold.counts
        assert deterministic(resumed) == deterministic(cold)

    def test_identical_circuit_resumes_at_full_depth(self):
        pool = SessionPool()
        circuit = layered()
        repro.run(circuit, engine="bitslice", sessions=pool)
        again = repro.run(circuit.copy(), engine="bitslice", sessions=pool)
        assert again.extra.get("resumed_from_depth") == circuit.num_gates
        assert deterministic(again) == deterministic(
            repro.run(circuit, engine="bitslice"))

    def test_longest_prefix_wins(self):
        pool = SessionPool()
        base = layered(layers=1, name="short")
        longer = extend(base, name="long")
        repro.run(base, engine="bitslice", sessions=pool)
        repro.run(longer, engine="bitslice", sessions=pool)
        final = extend(longer, name="longest")
        resumed = repro.run(final, engine="bitslice", sessions=pool)
        assert resumed.extra.get("resumed_from_depth") == longer.num_gates

    def test_stored_entry_survives_sibling_resumes(self):
        # A resume forks the retained payload; the stored entry must stay
        # matchable and uncorrupted for later branches off the same prefix.
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        branch_a = base.copy(name="a").t(0)
        branch_b = base.copy(name="b").h(1)
        first = repro.run(branch_a, engine="bitslice", sessions=pool)
        second = repro.run(branch_b, engine="bitslice", sessions=pool)
        assert first.extra.get("resumed_from_depth") == base.num_gates
        assert second.extra.get("resumed_from_depth") == base.num_gates
        assert deterministic(second) == deterministic(
            repro.run(base.copy(name="b").h(1), engine="bitslice"))


class TestEligibility:
    def test_non_resumable_engines_ignore_sessions(self):
        pool = SessionPool()
        circuit = layered()
        result = repro.run(circuit, engine="qmdd", sessions=pool)
        assert "resumed_from_depth" not in result.extra
        assert len(pool) == 0
        assert pool.stats().get("prefix_resume_misses", 0) == 0

    def test_dynamic_circuits_never_match_or_deposit(self):
        pool = SessionPool()
        circuit = QuantumCircuit(2, name="dyn").h(0)
        circuit.add_measure = None  # guard against accidental builder use
        from repro.circuit.gates import Gate, GateKind
        circuit.append(Gate(GateKind.MEASURE, (0,), clbits=(0,)))
        circuit.add(GateKind.X, [1], condition=1)
        result = repro.run(circuit, engine="bitslice", sessions=pool, seed=1)
        assert "resumed_from_depth" not in result.extra
        assert len(pool) == 0

    def test_reorder_setting_partitions_sessions(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        extended = extend(base)
        reordered = repro.run(extended, engine="bitslice", sessions=pool,
                              reorder=50)
        assert "resumed_from_depth" not in reordered.extra

    def test_failed_runs_are_not_deposited(self):
        pool = SessionPool()
        limits = repro.ResourceLimits(max_seconds=None, max_nodes=1)
        result = repro.run(layered(), engine="bitslice", limits=limits,
                           sessions=pool)
        assert result.status == "MO"
        assert len(pool) == 0


class TestInvalidation:
    def test_generation_bump_invalidates_the_entry(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        assert len(pool) == 1
        # Something other than the pool touches the retained manager: an
        # explicit cache clear bumps its generation...
        entry = next(iter(pool._entries.values()))
        entry.payload.state.manager.clear_cache()
        # ...so the next match conservatively drops the entry and runs cold.
        cold = repro.run(extend(base), engine="bitslice", sessions=pool)
        assert "resumed_from_depth" not in cold.extra
        stats = pool.stats()
        assert stats["prefix_invalidations"] == 1
        assert deterministic(cold) == deterministic(
            repro.run(extend(base), engine="bitslice"))

    def test_gc_bump_invalidates_the_entry(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        entry = next(iter(pool._entries.values()))
        entry.payload.state.manager.garbage_collect()
        repro.run(extend(base), engine="bitslice", sessions=pool)
        assert pool.stats()["prefix_invalidations"] == 1

    def test_resumed_runs_own_activity_does_not_poison_its_deposit(self):
        # The resumed run re-records the generation at its own deposit, so
        # chained resumes keep working even though the first resume's
        # execution may have bumped the shared manager's generation.
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        first = extend(base, name="first")
        repro.run(first, engine="bitslice", sessions=pool)
        second = extend(first, name="second")
        resumed = repro.run(second, engine="bitslice", sessions=pool)
        assert resumed.extra.get("resumed_from_depth") == first.num_gates


class TestPoolMechanics:
    def test_busy_chain_falls_back_to_cold(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        tokens = gate_tokens(extend(base))
        lease = pool.match(base.num_qubits, gate_tokens(base), None)
        assert lease is not None
        try:
            # The chain is mid-resume elsewhere: a concurrent match must
            # miss (and the front door then runs cold) instead of blocking.
            assert pool.match(base.num_qubits, tokens, None) is None
            assert pool.stats()["prefix_busy"] == 1
            busy = repro.run(extend(base), engine="bitslice", sessions=pool)
            assert "resumed_from_depth" not in busy.extra
        finally:
            lease.release()
        resumed = repro.run(extend(base, name="after"), engine="bitslice",
                            sessions=pool)
        assert resumed.extra.get("resumed_from_depth") >= base.num_gates

    def test_lease_release_is_idempotent(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        lease = pool.match(base.num_qubits, gate_tokens(base), None)
        lease.release()
        lease.release()
        assert pool.match(base.num_qubits, gate_tokens(base), None) is not None

    def test_session_bound_evicts_lru(self):
        pool = SessionPool(max_sessions=2)
        for index in range(3):
            circuit = QuantumCircuit(2, name=f"c{index}").h(0)
            for _ in range(index + 1):
                circuit.t(0)
            repro.run(circuit, engine="bitslice", sessions=pool)
        assert len(pool) == 2
        assert pool.stats()["prefix_sessions_evicted"] == 1

    def test_gates_saved_counter(self):
        pool = SessionPool()
        base = layered()
        repro.run(base, engine="bitslice", sessions=pool)
        repro.run(extend(base), engine="bitslice", sessions=pool)
        assert pool.stats()["prefix_gates_saved"] == base.num_gates

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SessionPool(max_sessions=0)


class TestCacheAndSessionsTogether:
    def test_cache_hit_short_circuits_before_sessions(self):
        cache = repro.ResultCache()
        pool = SessionPool()
        circuit = layered()
        repro.run(circuit, engine="bitslice", cache=cache, sessions=pool)
        hit = repro.run(circuit, engine="bitslice", cache=cache,
                        sessions=pool)
        assert hit.extra.get("cache_hit") == 1
        # The hit never touched an engine, so the pool saw one run only.
        assert pool.stats()["prefix_deposits"] == 1

"""Result-cache behaviour and the hit-vs-cold byte-identity guarantee."""

import json
import threading

import pytest

import repro
from repro import QuantumCircuit, ResourceLimits, ResultCache
from repro.cache import (
    cacheable_request,
    normalise_reorder,
    result_cache_key,
)
from repro.engines.base import DEFAULT_AUTO_REORDER_THRESHOLD
from repro.engines.result import STATUS_TIMEOUT, RunResult
from tests.conftest import ghz


def deterministic(result):
    return json.dumps(result.to_dict(timings=False), sort_keys=True)


class TestKeying:
    def test_reorder_normalisation(self):
        assert normalise_reorder(None) is None
        assert normalise_reorder(False) is None
        assert normalise_reorder(True) == DEFAULT_AUTO_REORDER_THRESHOLD
        assert normalise_reorder(12345) == 12345

    def test_cacheable_request(self):
        assert cacheable_request(None, None)          # pure probability run
        assert cacheable_request(100, 7)              # seeded sampling
        assert not cacheable_request(100, None)       # unseeded sampling

    def test_key_covers_engine_seed_shots_reorder_limits(self):
        circuit = ghz()
        base = result_cache_key(circuit, "bitslice", 1, 10, None)
        assert base == result_cache_key(circuit.copy(), "bitslice", 1, 10, None)
        assert base != result_cache_key(circuit, "qmdd", 1, 10, None)
        assert base != result_cache_key(circuit, "bitslice", 2, 10, None)
        assert base != result_cache_key(circuit, "bitslice", 1, 11, None)
        assert base != result_cache_key(circuit, "bitslice", 1, 10, 500)
        assert base != result_cache_key(circuit, "bitslice", 1, 10, None,
                                        ResourceLimits(max_seconds=1.0))

    def test_reorder_true_and_default_threshold_share_a_key(self):
        circuit = ghz()
        assert (result_cache_key(circuit, "bitslice", None, None, True)
                == result_cache_key(circuit, "bitslice", None, None,
                                    DEFAULT_AUTO_REORDER_THRESHOLD))


class TestHitVsCold:
    @pytest.mark.parametrize("engine", ["bitslice", "qmdd", "statevector",
                                        "stabilizer"])
    def test_hit_is_byte_identical_to_cold(self, engine):
        circuit = ghz().measure_all()
        cache = ResultCache()
        cold = repro.run(circuit, engine=engine, shots=128, seed=11,
                         cache=cache)
        hit = repro.run(circuit, engine=engine, shots=128, seed=11,
                        cache=cache)
        assert hit.extra.get("cache_hit") == 1
        assert "cache_hit" not in cold.extra
        assert deterministic(hit) == deterministic(cold)

    def test_hit_without_sampling(self):
        circuit = ghz()
        cache = ResultCache()
        cold = repro.run(circuit, engine="bitslice", cache=cache)
        hit = repro.run(circuit, engine="bitslice", cache=cache)
        assert hit.extra.get("cache_hit") == 1
        assert deterministic(hit) == deterministic(cold)
        assert cache.stats()["result_cache_hits"] == 1

    def test_hit_reports_this_requests_identity(self):
        cache = ResultCache()
        native = QuantumCircuit(3, name="native").h(0).swap(0, 2)
        spelled = (QuantumCircuit(3, name="spelled").h(0)
                   .cx(0, 2).cx(2, 0).cx(0, 2))
        repro.run(native, engine="bitslice", cache=cache)
        hit = repro.run(spelled, engine="bdd", cache=cache)
        assert hit.extra.get("cache_hit") == 1
        assert hit.circuit_name == "spelled"
        assert hit.num_gates == spelled.num_gates
        assert hit.requested_engine == "bdd"

    def test_unseeded_sampling_bypasses_the_cache(self):
        circuit = ghz().measure_all()
        cache = ResultCache()
        repro.run(circuit, engine="bitslice", shots=64, cache=cache)
        again = repro.run(circuit, engine="bitslice", shots=64, cache=cache)
        assert len(cache) == 0
        assert "cache_hit" not in again.extra

    def test_auto_request_keys_on_resolved_engine(self):
        # A Clifford circuit resolves "auto" to the stabilizer engine; an
        # explicit "stabilizer" request must share the entry.
        circuit = ghz()
        cache = ResultCache()
        cold = repro.run(circuit, engine="auto", cache=cache)
        hit = repro.run(circuit, engine="stabilizer", cache=cache)
        assert cold.engine == "stabilizer"
        assert hit.extra.get("cache_hit") == 1

    def test_hits_are_independent_copies(self):
        circuit = ghz()
        cache = ResultCache()
        repro.run(circuit, engine="bitslice", cache=cache)
        first = repro.run(circuit, engine="bitslice", cache=cache)
        first.extra["mutated"] = 1.0
        second = repro.run(circuit, engine="bitslice", cache=cache)
        assert "mutated" not in second.extra


class TestBounds:
    @staticmethod
    def _result(tag):
        return RunResult(engine="bitslice", circuit_name=tag, num_qubits=2,
                         num_gates=1, status="ok", final_probability=0.5)

    @staticmethod
    def _key(tag):
        return (tag, "bitslice", None, None, None, (60.0, 500_000, 24))

    def test_entry_bound_evicts_lru(self):
        cache = ResultCache(max_entries=2)
        for tag in ("a", "b", "c"):
            cache.store(self._key(tag), self._result(tag))
        assert len(cache) == 2
        assert self._key("a") not in cache
        assert cache.stats()["result_cache_evictions"] == 1

    def test_lookup_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.store(self._key("a"), self._result("a"))
        cache.store(self._key("b"), self._result("b"))
        assert cache.lookup(self._key("a")) is not None
        cache.store(self._key("c"), self._result("c"))
        assert self._key("a") in cache
        assert self._key("b") not in cache

    def test_byte_bound_evicts_and_rejects(self):
        small = ResultCache(max_bytes=1)
        assert not small.store(self._key("a"), self._result("a"))
        assert len(small) == 0
        sized = ResultCache(max_bytes=400)
        sized.store(self._key("a"), self._result("a"))
        sized.store(self._key("b"), self._result("b"))
        assert sized.total_bytes <= 400

    def test_non_ok_statuses_are_not_stored(self):
        cache = ResultCache()
        timeout = self._result("t")
        timeout.status = STATUS_TIMEOUT
        assert not cache.store(self._key("t"), timeout)
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache()
        cache.store(self._key("a"), self._result("a"))
        cache.lookup(self._key("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.stats()["result_cache_hits"] == 1

    def test_thread_safety_smoke(self):
        cache = ResultCache(max_entries=8)
        errors = []

        def worker(tag):
            try:
                for i in range(50):
                    key = self._key(f"{tag}-{i % 12}")
                    cache.store(key, self._result(tag))
                    cache.lookup(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(str(t),))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8


class TestSweeps:
    def test_run_tasks_serial_uses_cache(self):
        cache = ResultCache()
        tasks = [("bitslice", ghz()), ("bitslice", ghz())]
        first = repro.engines.run_tasks(tasks, cache=cache)
        assert "cache_hit" not in first[0].extra
        assert first[1].extra.get("cache_hit") == 1
        assert deterministic(first[0]) == deterministic(first[1])

    def test_run_sweep_parallel_parent_side_cache(self):
        cache = ResultCache()
        circuits = [ghz(name=f"g{i}") for i in range(3)]
        serial = repro.run_sweep(circuits, engines=["bitslice"], cache=cache)
        parallel = repro.run_sweep(circuits, engines=["bitslice"], jobs=2,
                                   cache=cache)
        assert all(r.extra.get("cache_hit") == 1 for r in parallel)
        assert ([deterministic(r) for r in serial]
                == [deterministic(r) for r in parallel])

    def test_parallel_duplicate_keys_dispatch_once(self):
        cache = ResultCache()
        circuits = [ghz(name=f"dup{i}") for i in range(4)]
        results = repro.run_sweep(circuits, engines=["bitslice"], jobs=2,
                                  cache=cache)
        stats = cache.stats()
        assert stats["result_cache_stores"] == 1
        # Each hit is rebranded with its own request's circuit name; every
        # other deterministic field replays the single dispatched run.
        payloads = []
        for result in results:
            data = result.to_dict(timings=False)
            assert data.pop("circuit").startswith("dup")
            payloads.append(json.dumps(data, sort_keys=True))
        assert len(set(payloads)) == 1

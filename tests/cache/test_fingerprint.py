"""Fingerprint invariance and sensitivity pins.

The contract: equal fingerprints exactly when two circuits are
interchangeable for every deterministic entry of a cached
``RunResult.to_dict(timings=False)``.  Invariant under representation
choices (name, copying, empty composition, SWAP spelling, re-stated
markers); sensitive to everything semantic (kinds, wires, conditions,
measurement layout, register widths).
"""

import pytest

from repro import QuantumCircuit
from repro.cache import circuit_fingerprint, gate_token, gate_tokens
from repro.circuit.gates import Gate, GateKind
from repro.circuit.transforms import expand_swaps, fingerprint_normal_form
from tests.conftest import ghz


class TestInvariance:
    def test_stable_across_calls(self):
        assert circuit_fingerprint(ghz()) == circuit_fingerprint(ghz())

    def test_name_is_cosmetic(self):
        assert (circuit_fingerprint(ghz(name="alpha"))
                == circuit_fingerprint(ghz(name="beta")))

    def test_copy_is_identical(self):
        circuit = ghz().measure_all()
        assert (circuit_fingerprint(circuit.copy())
                == circuit_fingerprint(circuit))

    def test_composing_an_empty_circuit_is_a_noop(self):
        circuit = ghz()
        padded = circuit.compose(QuantumCircuit(3, name="empty"))
        assert circuit_fingerprint(padded) == circuit_fingerprint(circuit)

    def test_swap_spelling_is_a_representation_choice(self):
        native = QuantumCircuit(3, name="n").h(0).swap(0, 2).t(1)
        spelled = (QuantumCircuit(3, name="s").h(0)
                   .cx(0, 2).cx(2, 0).cx(0, 2).t(1))
        assert circuit_fingerprint(native) == circuit_fingerprint(spelled)

    def test_fredkin_spelling_is_a_representation_choice(self):
        native = QuantumCircuit(3, name="n").h(0).cswap([0], 1, 2)
        assert (circuit_fingerprint(native)
                == circuit_fingerprint(expand_swaps(native)))

    def test_restated_measurement_marker_is_a_noop(self):
        once = ghz().measure(0, 0)
        twice = ghz().measure(0, 0).measure(0, 0)
        assert circuit_fingerprint(once) == circuit_fingerprint(twice)


class TestSensitivity:
    def test_gate_kind(self):
        a = QuantumCircuit(2, name="x").h(0).t(1)
        b = QuantumCircuit(2, name="x").h(0).tdg(1)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_wires(self):
        a = QuantumCircuit(3, name="x").cx(0, 1)
        b = QuantumCircuit(3, name="x").cx(0, 2)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_gate_order(self):
        a = QuantumCircuit(2, name="x").h(0).t(1)
        b = QuantumCircuit(2, name="x").t(1).h(0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_qubit_count(self):
        a = QuantumCircuit(2, name="x").h(0)
        b = QuantumCircuit(3, name="x").h(0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_classical_condition(self):
        a = QuantumCircuit(2, name="x")
        a.append(Gate(GateKind.MEASURE, (0,), clbits=(0,)))
        a.add(GateKind.X, [1])
        b = QuantumCircuit(2, name="x")
        b.append(Gate(GateKind.MEASURE, (0,), clbits=(0,)))
        b.add(GateKind.X, [1], condition=1)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_measurement_presence(self):
        assert (circuit_fingerprint(ghz())
                != circuit_fingerprint(ghz().measure_all()))

    def test_measurement_marker_order_is_semantic(self):
        # Marker order fixes the descent sampler's RNG consumption, so
        # measuring (q0, q1) is a different request than (q1, q0).
        a = ghz().measure(0, 0).measure(1, 1)
        b = ghz().measure(1, 1).measure(0, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_clbit_layout(self):
        a = ghz().measure(0, 0)
        b = ghz().measure(0, 2)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)


class TestTokens:
    def test_token_covers_all_semantic_fields(self):
        gate = Gate(GateKind.CCX, (2,), (0, 1), condition=3)
        assert gate_token(gate) == ("ccx", (2,), (0, 1), (), 3)

    def test_raw_tokens_keep_swaps_unexpanded(self):
        # Prefix matching compares execution plans, not normal forms: a
        # native SWAP and its three-CNOT spelling are different plans.
        native = QuantumCircuit(2, name="n").swap(0, 1)
        spelled = expand_swaps(native)
        assert len(gate_tokens(native)) == 1
        assert len(gate_tokens(spelled)) == 3

    def test_tokens_are_prefix_comparable(self):
        base, extended = ghz(), ghz().t(0)
        tokens = gate_tokens(base)
        assert gate_tokens(extended)[:len(tokens)] == tokens


class TestNormalForm:
    def test_normal_form_preserves_identity_fields(self):
        circuit = QuantumCircuit(3, name="keepme").swap(0, 1).measure(2, 4)
        normalised = fingerprint_normal_form(circuit)
        assert normalised.name == "keepme"
        assert normalised.num_qubits == circuit.num_qubits
        assert normalised.num_clbits == circuit.num_clbits
        assert all(g.kind is not GateKind.SWAP for g in normalised.gates)

    def test_normal_form_does_not_cancel_inverses(self):
        # H·H changes the simulated workload (peak nodes), so it must NOT
        # normalise away: the pair is kept and the fingerprints differ.
        plain = QuantumCircuit(2, name="x").h(0)
        padded = QuantumCircuit(2, name="x").h(0).h(1).h(1)
        assert circuit_fingerprint(plain) != circuit_fingerprint(padded)

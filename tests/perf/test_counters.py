"""Tests for the repro.perf instrumentation subsystem."""

from __future__ import annotations

import json

import pytest

from repro.bdd import BddManager
from repro.perf import (
    GAUGE_KEYS,
    PerfCounters,
    diff_stats,
    merge_span_stats,
    save_stats,
    stats_to_json,
    substrate_span,
)


class TestPerfCounters:
    def test_add_and_get(self):
        counters = PerfCounters()
        counters.add("ops")
        counters.add("ops", 4)
        counters.add("time", 0.5)
        assert counters["ops"] == 5
        assert counters.get("time") == 0.5
        assert counters.get("absent") == 0
        assert "ops" in counters
        assert len(counters) == 2

    def test_update_and_merge(self):
        left = PerfCounters({"a": 1, "b": 2})
        right = PerfCounters({"b": 3, "c": 4})
        left.merge(right)
        assert left.snapshot() == {"a": 1, "b": 5, "c": 4}

    def test_json_round_trip(self):
        counters = PerfCounters({"hits": 10, "rate": 0.25})
        decoded = json.loads(counters.to_json())
        assert decoded == {"hits": 10, "rate": 0.25}

    def test_reset(self):
        counters = PerfCounters({"a": 1})
        counters.reset()
        assert len(counters) == 0


class TestDiffStats:
    def test_counters_subtract_and_gauges_take_after_value(self):
        before = {"cache_and_hits": 10, "cache_and_misses": 10, "live_nodes": 100}
        after = {"cache_and_hits": 40, "cache_and_misses": 20, "live_nodes": 70}
        delta = diff_stats(before, after)
        assert delta["cache_and_hits"] == 30
        assert delta["cache_and_misses"] == 10
        assert delta["live_nodes"] == 70  # gauge
        assert delta["cache_and_hit_rate"] == pytest.approx(30 / 40)

    def test_hit_rates_recomputed_not_subtracted(self):
        before = {"cache_and_hits": 0, "cache_and_misses": 0,
                  "cache_and_hit_rate": 0.9}
        after = {"cache_and_hits": 1, "cache_and_misses": 1,
                 "cache_and_hit_rate": 0.95}
        delta = diff_stats(before, after)
        assert delta["cache_and_hit_rate"] == pytest.approx(0.5)


class TestSubstrateSpan:
    def test_span_captures_interval_work(self):
        manager = BddManager(6)
        x0, x1, x2 = manager.var(0), manager.var(1), manager.var(2)
        _ = x0 & x1  # outside the span
        with substrate_span(manager) as span:
            assert span.stats is None
            f = (x0 ^ x1) | (x2 & x0)
            _ = ~f
        assert span.stats is not None
        assert span.elapsed_seconds >= 0.0
        assert span.stats["elapsed_seconds"] == span.elapsed_seconds
        assert span.stats["cache_misses"] > 0
        assert span.stats["unique_inserts"] > 0
        assert 0.0 <= span.stats["cache_hit_rate"] <= 1.0

    def test_spans_nest(self):
        manager = BddManager(4)
        with substrate_span(manager) as outer:
            _ = manager.var(0) & manager.var(1)
            with substrate_span(manager) as inner:
                _ = manager.var(2) | manager.var(3)
        assert inner.stats["cache_misses"] <= outer.stats["cache_misses"]


class TestExportHelpers:
    def test_stats_to_json_is_sorted_and_stable(self):
        payload = stats_to_json({"b": 2, "a": 1})
        assert payload.index('"a"') < payload.index('"b"')
        assert json.loads(payload) == {"a": 1, "b": 2}

    def test_save_stats_to_path(self, tmp_path):
        target = tmp_path / "stats.json"
        save_stats({"x": 1}, str(target))
        assert json.loads(target.read_text()) == {"x": 1}

    def test_save_stats_to_handle(self, tmp_path):
        target = tmp_path / "stats.json"
        with open(target, "w", encoding="utf-8") as handle:
            save_stats({"y": 2.5}, handle)
        assert json.loads(target.read_text()) == {"y": 2.5}

    def test_merge_span_stats_recomputes_rates_and_drops_gauges(self):
        spans = [
            {"cache_and_hits": 1, "cache_and_misses": 1, "live_nodes": 50,
             "cache_and_hit_rate": 0.5},
            {"cache_and_hits": 3, "cache_and_misses": 1, "live_nodes": 80,
             "cache_and_hit_rate": 0.75},
        ]
        merged = merge_span_stats(spans)
        assert merged["cache_and_hits"] == 4
        assert merged["cache_and_misses"] == 2
        assert merged["cache_and_hit_rate"] == pytest.approx(4 / 6)
        for gauge in GAUGE_KEYS:
            assert gauge not in merged

"""Package-level tests: public API surface and cross-engine integration."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    AlgebraicComplex,
    BitSliceSimulator,
    QmddSimulator,
    QuantumCircuit,
    StabilizerSimulator,
    StatevectorSimulator,
)

from tests.conftest import assert_states_close, build_circuit_from_ops, random_ops


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "0.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_snippet(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        result = BitSliceSimulator.simulate(circuit)
        distribution = result.measurement_distribution()
        assert distribution[0b00] == pytest.approx(0.5)
        assert distribution[0b11] == pytest.approx(0.5)


class TestCrossEngineAgreement:
    """The four engines must agree wherever their domains overlap."""

    @pytest.mark.parametrize("seed", range(4))
    def test_universal_engines_agree(self, seed):
        circuit = build_circuit_from_ops(4, random_ops(4, 25, seed + 400))
        dense = StatevectorSimulator.simulate(circuit).state
        bitsliced = BitSliceSimulator.simulate(circuit).to_numpy()
        qmdd = QmddSimulator.simulate(circuit).to_numpy()
        assert_states_close(bitsliced, dense)
        assert_states_close(qmdd, dense, tol=1e-8)

    @pytest.mark.parametrize("seed", range(4))
    def test_clifford_engines_agree_on_marginals(self, seed):
        clifford_ops = ("x", "y", "z", "h", "s", "sdg", "cx", "cz", "swap")
        circuit = build_circuit_from_ops(4, random_ops(4, 25, seed + 500,
                                                       mnemonics=clifford_ops))
        dense = StatevectorSimulator.simulate(circuit)
        tableau = StabilizerSimulator.simulate(circuit)
        exact = BitSliceSimulator.simulate(circuit)
        for qubit in range(4):
            expected = dense.probability_of_qubit(qubit, 0)
            assert tableau.probability_of_qubit(qubit, 0) == pytest.approx(expected, abs=1e-9)
            assert exact.probability_of_qubit(qubit, 0) == pytest.approx(expected, abs=1e-9)

    def test_exact_amplitude_example_from_paper_representation(self):
        # H|0> has amplitude 1/sqrt(2) = (0, 0, 0, 1, k=1) exactly (Eq. 5).
        circuit = QuantumCircuit(1).h(0)
        amplitude = BitSliceSimulator.simulate(circuit).amplitude(0)
        assert amplitude == AlgebraicComplex(0, 0, 0, 1, 1)

    def test_collapse_consistency_between_engines(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        exact = BitSliceSimulator.simulate(circuit)
        dense = StatevectorSimulator.simulate(circuit)
        exact.measure_qubit(1, forced_outcome=1)
        dense.measure_qubit(1, forced_outcome=1)
        assert_states_close(exact.to_numpy(), dense.state)


class TestFailureInjection:
    """Corrupted inputs and hostile parameters must fail loudly, not wrongly."""

    def test_gate_on_missing_qubit(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).h(5)

    def test_engines_reject_size_mismatch(self):
        circuit = QuantumCircuit(3).h(0)
        for engine_class in (BitSliceSimulator, QmddSimulator,
                             StatevectorSimulator, StabilizerSimulator):
            with pytest.raises(ValueError):
                engine_class(2).run(circuit)

    def test_probability_queries_validate_indices(self):
        simulator = BitSliceSimulator.simulate(QuantumCircuit(2).h(0))
        with pytest.raises(ValueError):
            simulator.probability_of_qubit(4, 0)
        with pytest.raises(ValueError):
            simulator.amplitude(9)

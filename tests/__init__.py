"""Test package."""
